"""Shared seeded reconnect backoff (exponential, with per-key jitter).

PR 5 gave message-level LDP exponential-backoff session recovery with
deterministic, seeded jitter so same-instant session drops do not
produce a thundering herd of synchronized retries.  The controller
channel (``repro.control.controller``) needs exactly the same policy
for its per-node reconnect loop, so the logic lives here and both
callers share it.

The schedule contract is bit-for-bit stable:

* attempt ``0`` (the first retry after a drop) waits ``initial``;
* attempt ``n >= 1`` waits ``min(initial * 2**n, maximum)``;
* with ``jitter > 0`` every delay is scaled by a factor drawn from a
  per-key :class:`random.Random` seeded from ``(seed << 16) ^
  crc32("a|b")`` -- one draw per scheduled delay, in scheduling order
  -- so the same (seed, key, drop sequence) always yields the same
  schedule, while distinct keys decorrelate.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Tuple

Key = Tuple[str, str]


def jitter_rng(seed: int, key: Key) -> random.Random:
    """The deterministic per-key RNG the jittered schedule draws from."""
    salt = zlib.crc32(f"{key[0]}|{key[1]}".encode("utf-8"))
    return random.Random((seed << 16) ^ salt)


class ReconnectBackoff:
    """Exponential backoff with seeded per-key jitter.

    Pure policy: it computes delays and exhaustion, the caller owns the
    timers and attempt counters.  ``jitter == 0`` (the default) returns
    every delay untouched, bit for bit -- legacy schedules stay
    byte-identical.
    """

    def __init__(
        self,
        initial: float = 50e-3,
        maximum: float = 2.0,
        max_retries: int = 20,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not (0.0 <= jitter < 1.0):
            raise ValueError("retry_jitter must be in [0, 1)")
        self.initial = initial
        self.maximum = maximum
        self.max_retries = max_retries
        self.jitter = jitter
        self.seed = seed
        self._rngs: Dict[Key, random.Random] = {}

    def jittered(self, key: Key, delay: float) -> float:
        """Apply the seeded per-key jitter to a backoff delay."""
        if not self.jitter:
            return delay
        rng = self._rngs.get(key)
        if rng is None:
            rng = jitter_rng(self.seed, key)
            self._rngs[key] = rng
        return delay * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def first_delay(self, key: Key) -> float:
        """The wait before the first retry after a drop."""
        return self.jittered(key, self.initial)

    def next_delay(self, key: Key, attempt: int) -> float:
        """The wait after (1-based) ``attempt`` retries have run."""
        return self.jittered(
            key, min(self.initial * (2.0 ** attempt), self.maximum)
        )

    def exhausted(self, attempt: int) -> bool:
        """True once ``attempt`` exceeds the retry budget."""
        return attempt > self.max_retries

    def forget(self, key: Key) -> None:
        """Drop the per-key RNG (a fresh adoption restarts the draw
        sequence deterministically)."""
        self._rngs.pop(key, None)
