"""LDP-style label distribution (downstream unsolicited, liberal
retention omitted -- bindings follow the IGP shortest path).

For a FEC whose egress is a given LER, every router that can reach the
egress allocates a local label and installs:

* at the egress -- a POP entry (or it advertises Implicit NULL when
  penultimate-hop popping is requested, in which case the upstream
  neighbour pops instead),
* at transit nodes -- a SWAP from the local label to the downstream
  neighbour's label,
* at ingress LERs -- an FTN entry pushing the first label.

The result is exactly the state the paper's software routing
functionality would program into the hardware information base.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.control.labels import LabelAllocator
from repro.control.routing import LinkStateDatabase
from repro.mpls.fec import FEC
from repro.mpls.label import IMPLICIT_NULL, LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.router import LSRNode
from repro.mpls.transaction import TableTransaction
from repro.net.topology import Topology
from repro.obs.events import LabelMappingInstalled, LabelMappingWithdrawn
from repro.obs.telemetry import get_telemetry


@dataclass
class FECBinding:
    """The network-wide label bindings for one FEC."""

    fec: FEC
    egress: str
    php: bool
    #: node -> the label that node expects (IMPLICIT_NULL at a PHP egress)
    labels: Dict[str, int] = field(default_factory=dict)
    #: node -> next hop towards the egress
    next_hops: Dict[str, str] = field(default_factory=dict)
    #: nodes that actually received an FTN entry for this FEC (the
    #: LERs steering traffic onto it) -- what a per-node refresh needs
    ingresses: List[str] = field(default_factory=list)


class LDPProcess:
    """Distributes labels for FECs over a converged topology.

    Parameters
    ----------
    topology:
        The (shared) link-state view.
    nodes:
        name -> :class:`~repro.mpls.router.LSRNode`; their ILM/FTN
        tables are programmed directly, modelling a converged LDP.
    """

    def __init__(self, topology: Topology, nodes: Dict[str, LSRNode]) -> None:
        self.topology = topology
        self.nodes = nodes
        self.lsdb = LinkStateDatabase(topology)
        self.allocators: Dict[str, LabelAllocator] = {
            name: LabelAllocator() for name in nodes
        }
        self.bindings: List[FECBinding] = []
        #: crashed routers: no state is installed at (or via) them until
        #: they restart and a :meth:`reconverge` reprograms the network
        self.down_nodes: Set[str] = set()
        #: routers in graceful restart: the control plane is down but
        #: the data plane keeps forwarding on stale-marked tables
        #: (RFC 3478 non-stop forwarding); label distribution skips
        #: them until :meth:`complete_graceful_restart`
        self.restarting: Set[str] = set()

    def establish_fec(
        self,
        fec: FEC,
        egress: str,
        php: bool = False,
        ingresses: Optional[List[str]] = None,
    ) -> FECBinding:
        """Bind labels for ``fec`` terminating at ``egress``.

        ``ingresses`` limits which nodes get an FTN entry; by default
        every edge router (LER) that can reach the egress does.
        """
        if egress not in self.nodes:
            raise KeyError(f"unknown egress {egress!r}")
        binding = FECBinding(fec=fec, egress=egress, php=php)
        # a restarting router cannot advertise or accept mappings, so
        # new bindings are distributed as if it were absent; its
        # pre-crash entries keep forwarding until refresh or flush
        unavailable = self.down_nodes | self.restarting
        live = [n for n in self.nodes if n not in unavailable]

        # 1. label allocation (downstream unsolicited advertisement)
        for name in live:
            if name == egress:
                binding.labels[name] = (
                    IMPLICIT_NULL if php else self.allocators[name].allocate()
                )
            else:
                binding.labels[name] = self.allocators[name].allocate()

        # 2. next hops from each node's SPF towards the egress (a
        #    crashed node's links are already out of the topology, so
        #    SPF routes around it; a crashed egress yields no paths)
        if egress in live:
            for name in live:
                if name == egress:
                    continue
                spf = self.lsdb.spf(name)
                nh = spf.next_hop(egress)
                if nh is not None and nh in binding.labels:
                    binding.next_hops[name] = nh

        # 3. install forwarding state
        if not php and egress in binding.labels:
            self.nodes[egress].ilm.install(
                binding.labels[egress], NHLFE(op=LabelOp.POP)
            )
        for name, nh in binding.next_hops.items():
            node = self.nodes[name]
            node.ilm.install(
                binding.labels[name],
                NHLFE(
                    op=LabelOp.SWAP,
                    out_label=binding.labels[nh],
                    next_hop=nh,
                ),
            )
        targets = (
            ingresses
            if ingresses is not None
            else [
                name
                for name, node in self.nodes.items()
                if node.is_edge and name != egress and name not in unavailable
            ]
        )
        for name in targets:
            nh = binding.next_hops.get(name)
            if nh is None:
                continue
            binding.ingresses.append(name)
            downstream = binding.labels[nh]
            if downstream == IMPLICIT_NULL:
                # adjacent to a PHP egress: no label at all
                self.nodes[name].ftn.install(
                    fec, NHLFE(op=LabelOp.NOOP, next_hop=nh)
                )
            else:
                self.nodes[name].ftn.install(
                    fec,
                    NHLFE(op=LabelOp.PUSH, out_label=downstream, next_hop=nh),
                )
        self.bindings.append(binding)
        tel = get_telemetry()
        if tel.enabled:
            # converged-model LDP: the whole binding appears at once;
            # one install event per router that received state
            for name, label in sorted(binding.labels.items()):
                tel.events.emit(
                    LabelMappingInstalled(
                        node=name,
                        fec_id=str(fec),
                        label=label,
                        next_hop=binding.next_hops.get(name),
                    )
                )
        return binding

    def withdraw_fec(self, binding: FECBinding) -> None:
        """Remove all forwarding state and release the labels."""
        if binding not in self.bindings:
            raise KeyError("binding not established by this process")
        egress_label = binding.labels.get(binding.egress)
        if not binding.php and egress_label is not None:
            # the entry may already be gone if the egress crashed and
            # restarted cold -- withdrawal must stay idempotent.  A
            # restarting router cannot process the withdraw: its entry
            # stays in place (stale) until refreshed or flushed.
            if binding.egress not in self.restarting:
                try:
                    self.nodes[binding.egress].ilm.remove(egress_label)
                except KeyError:
                    pass
        for name in binding.next_hops:
            if name in self.restarting:
                continue
            node = self.nodes[name]
            try:
                node.ilm.remove(binding.labels[name])
            except KeyError:
                pass
            try:
                node.ftn.remove(binding.fec)
            except KeyError:
                pass
        for name, label in binding.labels.items():
            if label != IMPLICIT_NULL:
                self.allocators[name].release(label)
        self.bindings.remove(binding)
        tel = get_telemetry()
        if tel.enabled and tel.topo is not None:
            # the negative edge of the binding lifecycle, wanted only
            # by the topology observer (gated so event-count sections
            # of pre-existing reports stay byte-identical)
            for name, label in sorted(binding.labels.items()):
                tel.events.emit(
                    LabelMappingWithdrawn(
                        node=name, fec_id=str(binding.fec), label=label
                    )
                )
        if tel.enabled and tel.flows is not None:
            # the FEC's forwarding state is gone: finish the flow
            # records still accounted to it
            tel.flows.close_fec(str(getattr(binding.fec, "prefix", binding.fec)))

    def reconverge(self) -> None:
        """Recompute every binding after a topology change (the model's
        equivalent of LDP reacting to an IGP reconvergence).

        The whole recomputation runs as one shadow-bank transaction
        across every (non-restarting) router's ILM/FTN: the data plane
        keeps forwarding on the pre-reconvergence tables until every
        binding has been re-derived, then all tables swap banks
        atomically.  No packet ever observes a half-programmed network,
        and a crash mid-reconvergence rolls the staging banks back.
        """
        tables = []
        for name in sorted(self.nodes):
            if name in self.restarting:
                continue
            node = self.nodes[name]
            tables.extend((node.ilm, node.ftn))
        with TableTransaction(tables):
            old = list(self.bindings)
            for binding in old:
                fec, egress, php = binding.fec, binding.egress, binding.php
                self.withdraw_fec(binding)
                self.establish_fec(fec, egress, php)

    def refresh_node(self, name: str) -> Tuple[int, int]:
        """Rewrite one router's ILM/FTN entries in place from the
        current bindings -- same labels, same next hops.

        This is the delegation-fallback / controller-resync primitive:
        a stale-marked table is refreshed entry by entry (install
        clears the stale mark), so still-valid forwarding state never
        leaves the data plane and anything dead stays stale for the
        hold-timer flush.  Emits **no** events: the network-wide state
        does not change, only this router's copy is reasserted.
        Returns the number of (ILM, FTN) entries rewritten.
        """
        if name not in self.nodes:
            raise KeyError(f"unknown node {name!r}")
        node = self.nodes[name]
        ilm_writes = ftn_writes = 0
        for binding in self.bindings:
            if (
                name == binding.egress
                and not binding.php
                and name in binding.labels
            ):
                node.ilm.install(
                    binding.labels[name], NHLFE(op=LabelOp.POP)
                )
                ilm_writes += 1
            nh = binding.next_hops.get(name)
            if nh is not None and name in binding.labels:
                node.ilm.install(
                    binding.labels[name],
                    NHLFE(
                        op=LabelOp.SWAP,
                        out_label=binding.labels[nh],
                        next_hop=nh,
                    ),
                )
                ilm_writes += 1
            if name in binding.ingresses and nh is not None:
                downstream = binding.labels[nh]
                if downstream == IMPLICIT_NULL:
                    node.ftn.install(
                        binding.fec, NHLFE(op=LabelOp.NOOP, next_hop=nh)
                    )
                else:
                    node.ftn.install(
                        binding.fec,
                        NHLFE(
                            op=LabelOp.PUSH,
                            out_label=downstream,
                            next_hop=nh,
                        ),
                    )
                ftn_writes += 1
        return ilm_writes, ftn_writes

    # -- graceful restart (RFC 3478 semantics) -----------------------

    def begin_graceful_restart(self, name: str) -> Tuple[int, int]:
        """Warm control-plane crash at ``name``: non-stop forwarding.

        The data plane keeps forwarding; every surviving ILM/FTN entry
        is stale-marked; an open transaction rolls back (the staging
        bank dies with the software).  Until
        :meth:`complete_graceful_restart` the router can neither
        advertise nor process label mappings.  Returns the number of
        (ILM, FTN) entries stale-marked.
        """
        if name not in self.nodes:
            raise KeyError(f"unknown node {name!r}")
        node = self.nodes[name]
        if node.ilm.in_transaction:
            node.ilm.rollback()
        if node.ftn.in_transaction:
            node.ftn.rollback()
        self.restarting.add(name)
        return node.ilm.mark_all_stale(), node.ftn.mark_all_stale()

    def complete_graceful_restart(self, name: str) -> Tuple[int, int]:
        """The control plane at ``name`` is back (restart flag set).

        The router re-joins label distribution and the network
        reconverges; because label allocation is deterministic and the
        allocators' bookkeeping survives (the restarting LSR recovers
        its bindings from the preserved forwarding state, as RFC 3478
        describes), still-valid entries are rewritten with the same
        labels -- refreshed in place, clearing their stale marks.
        Returns the number of (ILM, FTN) entries *still* stale after
        the refresh: dead state the hold-timer flush will remove.
        """
        self.restarting.discard(name)
        self.reconverge()
        node = self.nodes[name]
        return len(node.ilm.stale_labels()), len(node.ftn.stale_fecs())
