"""MPLS OAM: LSP ping and TTL traceroute.

Operations tooling over the data plane, in the spirit of LSP ping
(RFC 4379) but built from exactly the mechanisms this reproduction
already has:

* **LSP ping** -- inject a probe addressed into the FEC at the ingress
  and confirm it emerges at the expected egress, measuring round-trip
  path latency.  Verifies the *data plane* end to end, which routing
  state alone cannot.
* **LSP traceroute** -- inject probes with MPLS TTL 1, 2, 3, ...; each
  expires one hop further along the LSP and the discarding node reveals
  itself, reconstructing the actual forwarding path hop by hop (the
  paper's TTL semantics -- "The packet is discarded when the TTL
  reaches zero" -- used as a feature).
* **OAM monitor** -- a continuous, event-driven health monitor that
  pings configured FECs on a period *inside* the running simulation,
  publishes up/down + RTT metrics and SLO-breach counters, and emits
  :class:`~repro.obs.events.OAMProbeCompleted` events the span layer
  folds into probe traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.net.network import MPLSNetwork
from repro.net.packet import IPv4Packet
from repro.obs.events import OAMProbeCompleted
from repro.obs.telemetry import get_telemetry


@dataclass(frozen=True)
class PingResult:
    """One LSP ping."""

    reached: bool
    egress: Optional[str]
    latency: Optional[float]
    sent_at: float


@dataclass(frozen=True)
class TracerouteHop:
    """One TTL step of an LSP traceroute."""

    ttl: int
    node: Optional[str]   # who reported (discarded or delivered)
    reached_egress: bool


@dataclass
class TracerouteResult:
    hops: List[TracerouteHop] = field(default_factory=list)

    @property
    def path(self) -> List[str]:
        """Distinct hops in order.  The egress appears once even though
        it answers two probes (it expires the TTL that just reaches it
        and delivers the next one)."""
        out: List[str] = []
        for hop in self.hops:
            if hop.node is not None and (not out or out[-1] != hop.node):
                out.append(hop.node)
        return out

    @property
    def complete(self) -> bool:
        return bool(self.hops) and self.hops[-1].reached_egress


def lsp_ping(
    network: MPLSNetwork,
    ingress: str,
    destination: str,
    source: str = "192.0.2.1",
    timeout: float = 1.0,
) -> PingResult:
    """Send one probe into the FEC at ``ingress``; did it come out?"""
    sent_at = network.scheduler.now
    before = len(network.deliveries)
    probe = IPv4Packet(
        src=source, dst=destination, protocol=17, created_at=sent_at
    )
    network.inject(ingress, probe)
    network.run(until=sent_at + timeout)
    for delivery in network.deliveries[before:]:
        if delivery.packet.uid == probe.uid:
            return PingResult(
                reached=True,
                egress=delivery.node,
                latency=delivery.time - sent_at,
                sent_at=sent_at,
            )
    return PingResult(
        reached=False, egress=None, latency=None, sent_at=sent_at
    )


def lsp_traceroute(
    network: MPLSNetwork,
    ingress: str,
    destination: str,
    source: str = "192.0.2.1",
    max_ttl: int = 16,
    timeout_per_hop: float = 1.0,
) -> TracerouteResult:
    """Walk the LSP with expiring TTLs.

    Probe k carries IPv4 TTL k+1: the ingress consumes one decrement,
    so the MPLS TTL is k on entry to the core and the probe dies at the
    k-th label switch -- whose discard record names it.  The walk ends
    when a probe survives to the egress.
    """
    result = TracerouteResult()
    for ttl in range(2, max_ttl + 2):
        start = network.scheduler.now
        drops_before = len(network.drops)
        deliveries_before = len(network.deliveries)
        probe = IPv4Packet(
            src=source, dst=destination, ttl=ttl, created_at=start
        )
        network.inject(ingress, probe)
        network.run(until=start + timeout_per_hop)
        delivered = next(
            (
                d
                for d in network.deliveries[deliveries_before:]
                if d.packet.uid == probe.uid
            ),
            None,
        )
        if delivered is not None:
            result.hops.append(
                TracerouteHop(
                    ttl=ttl, node=delivered.node, reached_egress=True
                )
            )
            return result
        new_drops = network.drops[drops_before:]
        expiry = next(
            (d for d in new_drops if "TTL" in d.reason), None
        )
        result.hops.append(
            TracerouteHop(
                ttl=ttl,
                node=expiry.node if expiry is not None else None,
                reached_egress=False,
            )
        )
        if expiry is None and not new_drops:
            break  # probe vanished (e.g. blackhole without a record)
    return result


# -- the continuous health monitor -------------------------------------------

#: Probe flows carry negative ids so traffic accounting and the SLO
#: histograms can tell them from production flows; target i uses
#: ``PROBE_FLOW_BASE - i``.
PROBE_FLOW_BASE = -1000


@dataclass(frozen=True)
class ProbeTarget:
    """One FEC the monitor keeps pinging."""

    fec: str
    ingress: str
    destination: str
    source: str = "192.0.2.199"


@dataclass
class ProbeRecord:
    """One probe's lifecycle, from injection to verdict."""

    fec: str
    uid: int
    sent_at: float
    deadline: float
    checked: bool = False
    reached: bool = False
    rtt: Optional[float] = None
    breach: bool = False


@dataclass
class UpTransition:
    """The monitor's per-FEC verdict flipping at a probe deadline."""

    time: float
    fec: str
    up: bool


class OAMMonitor:
    """Continuous LSP health monitoring inside the running simulation.

    Unlike :func:`lsp_ping` (which drives the scheduler itself and so
    can only run *between* simulations), the monitor is event-driven:
    it injects one probe per configured FEC every ``period`` seconds
    and schedules a verdict check one ``timeout`` later, all as
    ordinary scheduler events that interleave with traffic, faults and
    reconvergence.  Each verdict updates the per-FEC up/down gauge and
    RTT histogram, counts SLO breaches (``rtt > slo_rtt_s``), and emits
    an :class:`~repro.obs.events.OAMProbeCompleted` event, which an
    attached span recorder folds into a probe trace.

    :meth:`localize` runs a post-run traceroute for a FEC that ended
    down, naming the hop where the LSP breaks.
    """

    def __init__(
        self,
        network: MPLSNetwork,
        targets: Sequence[ProbeTarget],
        period: float = 0.1,
        start: float = 0.0,
        stop: Optional[float] = None,
        timeout: Optional[float] = None,
        slo_rtt_s: Optional[float] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.network = network
        self.targets = list(targets)
        self.period = period
        self.start = start
        self.stop = stop
        self.timeout = timeout if timeout is not None else period
        self.slo_rtt_s = slo_rtt_s
        self.records: List[ProbeRecord] = []
        self.transitions: List[UpTransition] = []
        #: fec -> last verdict (None until the first probe concludes)
        self.up: Dict[str, Optional[bool]] = {t.fec: None for t in self.targets}
        self._flow_ids: Dict[str, int] = {
            t.fec: PROBE_FLOW_BASE - i for i, t in enumerate(self.targets)
        }
        self._delivery_scan = 0
        self._delivered_uids: Dict[int, float] = {}
        network.scheduler.at(start, self._fire)

    @property
    def flow_ids(self) -> Dict[str, int]:
        """fec -> the probe flow id it is pinged with."""
        return dict(self._flow_ids)

    def _fire(self) -> None:
        now = self.network.scheduler.now
        for target in self.targets:
            probe = IPv4Packet(
                src=target.source,
                dst=target.destination,
                protocol=17,
                flow_id=self._flow_ids[target.fec],
                created_at=now,
            )
            record = ProbeRecord(
                fec=target.fec,
                uid=probe.uid,
                sent_at=now,
                deadline=now + self.timeout,
            )
            self.records.append(record)
            self.network.inject(target.ingress, probe)
            self.network.scheduler.at(
                record.deadline, lambda r=record, t=target: self._check(r, t)
            )
        next_fire = now + self.period
        if self.stop is None or next_fire <= self.stop:
            self.network.scheduler.at(next_fire, self._fire)

    def _scan_deliveries(self) -> None:
        deliveries = self.network.deliveries
        while self._delivery_scan < len(deliveries):
            d = deliveries[self._delivery_scan]
            self._delivery_scan += 1
            if d.packet.flow_id <= PROBE_FLOW_BASE:
                self._delivered_uids[d.packet.uid] = d.time

    def _check(self, record: ProbeRecord, target: ProbeTarget) -> None:
        self._scan_deliveries()
        record.checked = True
        delivered_at = self._delivered_uids.pop(record.uid, None)
        record.reached = delivered_at is not None
        if record.reached:
            record.rtt = delivered_at - record.sent_at
            record.breach = (
                self.slo_rtt_s is not None and record.rtt > self.slo_rtt_s
            )
        verdict = record.reached and not record.breach
        previous = self.up[record.fec]
        self.up[record.fec] = verdict
        if verdict != previous:
            self.transitions.append(
                UpTransition(
                    time=self.network.scheduler.now,
                    fec=record.fec,
                    up=verdict,
                )
            )
        tel = get_telemetry()
        if tel.enabled:
            outcome = "ok" if record.reached else "lost"
            if record.breach:
                outcome = "breach"
            tel.oam_probes.labels(record.fec, outcome).inc()
            tel.oam_up.labels(record.fec).set(1.0 if verdict else 0.0)
            if record.rtt is not None:
                tel.oam_rtt.labels(record.fec).observe(record.rtt)
            if record.breach:
                tel.slo_breaches.labels(record.fec).inc()
            tel.events.emit(
                OAMProbeCompleted(
                    fec=record.fec,
                    ingress=target.ingress,
                    uid=record.uid,
                    reached=record.reached,
                    rtt=record.rtt,
                    breach=record.breach,
                )
            )

    # -- post-run queries --------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Deterministic per-FEC probe statistics (checked probes only;
        probes whose deadline lies beyond the run horizon are pending)."""
        fecs: List[Dict[str, Any]] = []
        for target in self.targets:
            checked = [
                r for r in self.records if r.fec == target.fec and r.checked
            ]
            rtts = sorted(r.rtt for r in checked if r.rtt is not None)
            entry: Dict[str, Any] = {
                "fec": target.fec,
                "probes": len(checked),
                "reached": sum(1 for r in checked if r.reached),
                "lost": sum(1 for r in checked if not r.reached),
                "breaches": sum(1 for r in checked if r.breach),
                "up_at_end": self.up[target.fec],
                "transitions": [
                    {"time": t.time, "up": t.up}
                    for t in self.transitions
                    if t.fec == target.fec
                ],
            }
            if rtts:
                entry["rtt_min_s"] = rtts[0]
                entry["rtt_max_s"] = rtts[-1]
                entry["rtt_mean_s"] = sum(rtts) / len(rtts)
            fecs.append(entry)
        return {
            "period": self.period,
            "timeout": self.timeout,
            "slo_rtt_s": self.slo_rtt_s,
            "fecs": fecs,
        }

    def localize(self, fec: str) -> TracerouteResult:
        """Traceroute one FEC *after* the run (drives the scheduler;
        never call from inside a scheduler callback)."""
        target = next(t for t in self.targets if t.fec == fec)
        return lsp_traceroute(
            self.network,
            target.ingress,
            target.destination,
            source=target.source,
        )
