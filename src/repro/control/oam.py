"""MPLS OAM: LSP ping and TTL traceroute.

Operations tooling over the data plane, in the spirit of LSP ping
(RFC 4379) but built from exactly the mechanisms this reproduction
already has:

* **LSP ping** -- inject a probe addressed into the FEC at the ingress
  and confirm it emerges at the expected egress, measuring round-trip
  path latency.  Verifies the *data plane* end to end, which routing
  state alone cannot.
* **LSP traceroute** -- inject probes with MPLS TTL 1, 2, 3, ...; each
  expires one hop further along the LSP and the discarding node reveals
  itself, reconstructing the actual forwarding path hop by hop (the
  paper's TTL semantics -- "The packet is discarded when the TTL
  reaches zero" -- used as a feature).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.network import MPLSNetwork
from repro.net.packet import IPv4Packet


@dataclass(frozen=True)
class PingResult:
    """One LSP ping."""

    reached: bool
    egress: Optional[str]
    latency: Optional[float]
    sent_at: float


@dataclass(frozen=True)
class TracerouteHop:
    """One TTL step of an LSP traceroute."""

    ttl: int
    node: Optional[str]   # who reported (discarded or delivered)
    reached_egress: bool


@dataclass
class TracerouteResult:
    hops: List[TracerouteHop] = field(default_factory=list)

    @property
    def path(self) -> List[str]:
        """Distinct hops in order.  The egress appears once even though
        it answers two probes (it expires the TTL that just reaches it
        and delivers the next one)."""
        out: List[str] = []
        for hop in self.hops:
            if hop.node is not None and (not out or out[-1] != hop.node):
                out.append(hop.node)
        return out

    @property
    def complete(self) -> bool:
        return bool(self.hops) and self.hops[-1].reached_egress


def lsp_ping(
    network: MPLSNetwork,
    ingress: str,
    destination: str,
    source: str = "192.0.2.1",
    timeout: float = 1.0,
) -> PingResult:
    """Send one probe into the FEC at ``ingress``; did it come out?"""
    sent_at = network.scheduler.now
    before = len(network.deliveries)
    probe = IPv4Packet(
        src=source, dst=destination, protocol=17, created_at=sent_at
    )
    network.inject(ingress, probe)
    network.run(until=sent_at + timeout)
    for delivery in network.deliveries[before:]:
        if delivery.packet.uid == probe.uid:
            return PingResult(
                reached=True,
                egress=delivery.node,
                latency=delivery.time - sent_at,
                sent_at=sent_at,
            )
    return PingResult(
        reached=False, egress=None, latency=None, sent_at=sent_at
    )


def lsp_traceroute(
    network: MPLSNetwork,
    ingress: str,
    destination: str,
    source: str = "192.0.2.1",
    max_ttl: int = 16,
    timeout_per_hop: float = 1.0,
) -> TracerouteResult:
    """Walk the LSP with expiring TTLs.

    Probe k carries IPv4 TTL k+1: the ingress consumes one decrement,
    so the MPLS TTL is k on entry to the core and the probe dies at the
    k-th label switch -- whose discard record names it.  The walk ends
    when a probe survives to the egress.
    """
    result = TracerouteResult()
    for ttl in range(2, max_ttl + 2):
        start = network.scheduler.now
        drops_before = len(network.drops)
        deliveries_before = len(network.deliveries)
        probe = IPv4Packet(
            src=source, dst=destination, ttl=ttl, created_at=start
        )
        network.inject(ingress, probe)
        network.run(until=start + timeout_per_hop)
        delivered = next(
            (
                d
                for d in network.deliveries[deliveries_before:]
                if d.packet.uid == probe.uid
            ),
            None,
        )
        if delivered is not None:
            result.hops.append(
                TracerouteHop(
                    ttl=ttl, node=delivered.node, reached_egress=True
                )
            )
            return result
        new_drops = network.drops[drops_before:]
        expiry = next(
            (d for d in new_drops if "TTL" in d.reason), None
        )
        result.hops.append(
            TracerouteHop(
                ttl=ttl,
                node=expiry.node if expiry is not None else None,
                reached_egress=False,
            )
        )
        if expiry is None and not new_drops:
            break  # probe vanished (e.g. blackhole without a record)
    return result
