"""Control-plane overload protection: bounded queues, shedding, hysteresis.

The paper's split puts routing and signalling in software -- the part
that melts first when "heavy traffic from millions of users" turns into
a signalling storm.  This module supplies the three defences the
control plane needs to degrade *gracefully* instead of collapsing:

1. :class:`PriorityControlQueue` -- a bounded, class-prioritized
   per-node control-message queue.  Liveness traffic (HELLO / INIT /
   KEEPALIVE) outranks teardown traffic (LABEL_WITHDRAW), which
   outranks setup traffic (LABEL_MAPPING / PATH), so a mapping flood
   cannot starve the keepalives that hold LDP sessions up.  Watermarks
   add early shedding: past the high watermark the queue sheds arriving
   setup-class messages until it drains below the low watermark.

2. :class:`IngressShedder` -- deterministic ingress load shedding.
   Under sustained control-queue pressure the ingress LERs stop
   admitting traffic for the lowest-CoS FECs first, and restore them
   (highest-CoS-first of the shed set) only after the pressure has
   stayed low for a configurable number of observation periods --
   hysteresis, so the shedder does not flap with the queue.

3. :class:`OverloadConfig` -- one validated knob bundle for both, plus
   the LDP liveness timers (keepalive interval / hold time) and the
   seeded reconnect jitter, parsed from the ``overload`` scenario key.

Everything here is deterministic: shedding decisions follow queue
depths and configured thresholds only, and the only randomness (the
reconnect jitter) is seeded per session pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Tuple

from collections import deque

from repro.mpls.fec import PrefixFEC
from repro.net.events import EventScheduler
from repro.net.packet import IPv4Packet


class MessageClass(IntEnum):
    """Control-message priority classes, best (lowest) first."""

    LIVENESS = 0  #: hello / init / keepalive -- keeps sessions up
    TEARDOWN = 1  #: withdraw / release -- frees state, must not queue-starve
    SETUP = 2  #: mapping / PATH -- the bulk that floods under storms


CLASS_NAMES: Dict[MessageClass, str] = {
    MessageClass.LIVENESS: "liveness",
    MessageClass.TEARDOWN: "teardown",
    MessageClass.SETUP: "setup",
}

_KIND_TO_CLASS: Dict[str, MessageClass] = {
    "hello": MessageClass.LIVENESS,
    "init": MessageClass.LIVENESS,
    "keepalive": MessageClass.LIVENESS,
    "label-withdraw": MessageClass.TEARDOWN,
    "label-release": MessageClass.TEARDOWN,
    # a shutdown frees session state: teardown priority, like withdraw
    "shutdown": MessageClass.TEARDOWN,
    "label-mapping": MessageClass.SETUP,
    "path": MessageClass.SETUP,
    # TTL-exception punts are sheddable bulk by design: a flood of them
    # must never outrank the keepalives it is trying to starve
    "ttl-exception": MessageClass.SETUP,
    # the PCE controller channel rides the same bounded queues: its
    # keepalives are liveness, its read-backs and table writes are
    # sheddable setup work
    "ctrl-keepalive": MessageClass.LIVENESS,
    "ctrl-read": MessageClass.SETUP,
    "ctrl-write": MessageClass.SETUP,
}


def classify_message(kind: Any) -> MessageClass:
    """Map a message kind (enum or its string value) to its class.

    Unknown kinds classify as SETUP: anything unrecognized is treated
    as sheddable bulk, never as liveness.
    """
    value = getattr(kind, "value", kind)
    return _KIND_TO_CLASS.get(value, MessageClass.SETUP)


@dataclass
class OverloadConfig:
    """Knobs for the overload-protection subsystem (scenario ``overload``)."""

    #: master switch: False builds the same bounded queues *without*
    #: prioritization or shedding (plain FIFO tail-drop), the baseline a
    #: protected run is compared against
    enabled: bool = True
    # -- control queue ---------------------------------------------------
    queue_capacity: int = 32
    high_watermark: int = 24
    low_watermark: int = 8
    #: CPU time to process one control message
    service_time_s: float = 1e-3
    # -- LDP liveness ----------------------------------------------------
    keepalive_interval: float = 0.05
    hold_time: float = 0.2
    #: periodic timers re-arm only while now + period <= horizon; unset
    #: (None) leaves the timers unarmed so unit tests can drive manually
    horizon: Optional[float] = None
    # -- reconnect jitter ------------------------------------------------
    #: +/- fraction applied to every reconnect backoff delay (0 = none)
    retry_jitter: float = 0.0
    # -- ingress shedding ------------------------------------------------
    shed_period: float = 0.02
    shed_start: float = 0.0
    #: pressure (max queue fill fraction) at/above which one more FEC sheds
    shed_high: float = 0.5
    #: pressure at/below which a calm tick is counted towards restore
    shed_low: float = 0.25
    #: consecutive calm ticks before one shed FEC is restored
    shed_hysteresis: int = 3
    #: never shed more than this fraction of the configured FECs -- the
    #: graceful-degradation floor (0.5 keeps at least half the FECs up)
    max_shed_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if not (0 <= self.low_watermark < self.high_watermark):
            raise ValueError("need 0 <= low_watermark < high_watermark")
        if self.high_watermark > self.queue_capacity:
            raise ValueError("high_watermark must be <= queue_capacity")
        if self.service_time_s <= 0:
            raise ValueError("service_time_s must be > 0")
        if self.keepalive_interval <= 0 or self.hold_time <= 0:
            raise ValueError("keepalive_interval and hold_time must be > 0")
        if not (0.0 <= self.retry_jitter < 1.0):
            raise ValueError("retry_jitter must be in [0, 1)")
        if not (0.0 <= self.shed_low < self.shed_high <= 1.0):
            raise ValueError("need 0 <= shed_low < shed_high <= 1")
        if self.shed_hysteresis < 1:
            raise ValueError("shed_hysteresis must be >= 1")
        if not (0.0 <= self.max_shed_fraction <= 1.0):
            raise ValueError("max_shed_fraction must be in [0, 1]")
        if self.shed_period <= 0:
            raise ValueError("shed_period must be > 0")

    @classmethod
    def from_dict(
        cls, raw: Mapping[str, Any], horizon: Optional[float] = None
    ) -> "OverloadConfig":
        known = {
            "enabled": bool,
            "queue_capacity": int,
            "high_watermark": int,
            "low_watermark": int,
            "service_time_s": float,
            "keepalive_interval": float,
            "hold_time": float,
            "retry_jitter": float,
            "shed_period": float,
            "shed_start": float,
            "shed_high": float,
            "shed_low": float,
            "shed_hysteresis": int,
            "max_shed_fraction": float,
        }
        unknown = set(raw) - set(known)
        if unknown:
            raise ValueError(
                f"unknown overload key(s): {', '.join(sorted(unknown))}"
            )
        kwargs: Dict[str, Any] = {
            key: cast(raw[key]) for key, cast in known.items() if key in raw
        }
        return cls(horizon=horizon, **kwargs)


class PriorityControlQueue:
    """Bounded control-message queue with class priority and watermarks.

    ``prioritized=False`` degrades it to a plain bounded FIFO with tail
    drop -- the unprotected baseline.  Either way the queue keeps
    per-class accounting so a report can show *what* was lost.
    """

    def __init__(
        self,
        capacity: int,
        high_watermark: int,
        low_watermark: int,
        prioritized: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not (0 <= low_watermark < high_watermark <= capacity):
            raise ValueError(
                "need 0 <= low_watermark < high_watermark <= capacity"
            )
        self.capacity = capacity
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.prioritized = prioritized
        self._queues: Tuple[Deque, Deque, Deque] = (
            deque(),
            deque(),
            deque(),
        )
        #: True while the queue is between watermarks on the way down
        self.shedding = False
        self.enqueued = 0
        self.serviced = 0
        self.max_depth = 0
        self.dropped_by_class: Dict[MessageClass, int] = {
            c: 0 for c in MessageClass
        }
        self.shed_by_class: Dict[MessageClass, int] = {
            c: 0 for c in MessageClass
        }

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)

    @property
    def fill_fraction(self) -> float:
        return len(self) / self.capacity

    def offer(
        self, item: Any, cls: MessageClass
    ) -> Tuple[bool, List[Tuple[Any, MessageClass, str]]]:
        """Try to enqueue ``item``; returns (accepted, dropped).

        ``dropped`` lists every message lost by this offer -- the
        arrival itself (watermark shed or queue full) or a worse-class
        victim evicted to make room for a better-class arrival.
        """
        depth = len(self)
        if self.prioritized:
            if self.shedding and depth <= self.low_watermark:
                self.shedding = False
            if not self.shedding and depth >= self.high_watermark:
                self.shedding = True
            if self.shedding and cls is MessageClass.SETUP:
                self.shed_by_class[cls] += 1
                return False, [(item, cls, "watermark-shed")]
        dropped: List[Tuple[Any, MessageClass, str]] = []
        if depth >= self.capacity:
            victim_cls = None
            if self.prioritized:
                for candidate in (MessageClass.SETUP, MessageClass.TEARDOWN):
                    if candidate > cls and self._queues[candidate]:
                        victim_cls = candidate
                        break
            if victim_cls is None:
                self.dropped_by_class[cls] += 1
                return False, [(item, cls, "queue-full")]
            victim, vcls = self._queues[victim_cls].pop()  # newest first
            self.dropped_by_class[vcls] += 1
            dropped.append((victim, vcls, "evicted"))
        bucket = cls if self.prioritized else MessageClass.LIVENESS
        self._queues[bucket].append((item, cls))
        self.enqueued += 1
        self.max_depth = max(self.max_depth, len(self))
        return True, dropped

    def pop(self) -> Optional[Tuple[Any, MessageClass]]:
        """Dequeue the best-class head (plain FIFO when unprioritized)."""
        for queue in self._queues:
            if queue:
                item, cls = queue.popleft()
                self.serviced += 1
                return item, cls
        return None


@dataclass
class ShedEntry:
    """One ingress FEC the shedder may degrade."""

    prefix: str
    cos: int
    ingress: str
    matcher: PrefixFEC = field(init=False, repr=False)
    shed: bool = False

    def __post_init__(self) -> None:
        self.matcher = PrefixFEC(self.prefix)


class IngressShedder:
    """Deterministic, hysteretic ingress load shedding.

    Observes a pressure signal (the worst control-queue fill fraction)
    every ``period``; at/above ``high`` it sheds one more FEC --
    strictly lowest CoS first -- up to the ``max_shed_fraction`` floor.
    After ``hysteresis`` consecutive observations at/below ``low`` it
    restores one FEC (reverse order).  ``guard`` plugs into
    :attr:`repro.net.network.MPLSNetwork.ingress_guard` to drop packets
    of shed FECs at their ingress LER.
    """

    def __init__(
        self,
        entries: List[ShedEntry],
        pressure: Callable[[], float],
        config: OverloadConfig,
        scheduler: EventScheduler,
    ) -> None:
        self.entries = sorted(entries, key=lambda e: (e.cos, e.prefix))
        self.pressure = pressure
        self.config = config
        self.scheduler = scheduler
        self.max_shed = int(len(self.entries) * config.max_shed_fraction)
        self._calm_ticks = 0
        #: (time, prefix, cos) per transition, in occurrence order
        self.shed_events: List[Tuple[float, str, int]] = []
        self.restore_events: List[Tuple[float, str, int]] = []
        self.packets_shed = 0
        self._first_shed_at: Optional[float] = None
        self._last_restore_at: Optional[float] = None

    # -- state ------------------------------------------------------------
    @property
    def shed_count(self) -> int:
        return sum(1 for e in self.entries if e.shed)

    @property
    def recovery_time_s(self) -> Optional[float]:
        """First-shed to last-restore, once everything is restored."""
        if (
            self._first_shed_at is None
            or self._last_restore_at is None
            or self.shed_count
        ):
            return None
        return self._last_restore_at - self._first_shed_at

    # -- control loop ------------------------------------------------------
    def arm(self) -> None:
        """Schedule the observation loop (needs ``config.horizon``)."""
        if self.config.horizon is None:
            raise ValueError("cannot arm the shedder without a horizon")
        self.scheduler.at(self.config.shed_start, self.observe)

    def observe(self) -> None:
        now = self.scheduler.now
        p = self.pressure()
        if p >= self.config.shed_high:
            self._calm_ticks = 0
            self._shed_one(now)
        elif p <= self.config.shed_low:
            self._calm_ticks += 1
            if self._calm_ticks >= self.config.shed_hysteresis:
                self._restore_one(now)
        else:
            self._calm_ticks = 0
        horizon = self.config.horizon
        if horizon is not None and now + self.config.shed_period <= horizon:
            self.scheduler.after(self.config.shed_period, self.observe)

    def _shed_one(self, now: float) -> None:
        if self.shed_count >= self.max_shed:
            return
        for entry in self.entries:  # lowest CoS first
            if not entry.shed:
                entry.shed = True
                self.shed_events.append((now, entry.prefix, entry.cos))
                if self._first_shed_at is None:
                    self._first_shed_at = now
                self._note(entry, "shed")
                return

    def _restore_one(self, now: float) -> None:
        for entry in reversed(self.entries):  # highest CoS back first
            if entry.shed:
                entry.shed = False
                self._calm_ticks = 0
                self.restore_events.append((now, entry.prefix, entry.cos))
                self._last_restore_at = now
                self._note(entry, "restored")
                return

    def _note(self, entry: ShedEntry, state: str) -> None:
        from repro.obs.events import FECShed
        from repro.obs.telemetry import get_telemetry

        tel = get_telemetry()
        if not tel.enabled:
            return
        count_here = sum(
            1
            for e in self.entries
            if e.shed and e.ingress == entry.ingress
        )
        tel.fecs_shed.labels(entry.ingress).set(count_here)
        event = FECShed(
            node=entry.ingress,
            fec=entry.prefix,
            cos=entry.cos,
            state=state,
        )
        event.time = self.scheduler.now
        tel.events.emit(event)

    # -- data-plane hook ---------------------------------------------------
    def guard(self, node: str, packet: IPv4Packet) -> bool:
        """True when ``packet`` arriving at ingress ``node`` must shed."""
        for entry in self.entries:
            if (
                entry.shed
                and entry.ingress == node
                and entry.matcher.matches(packet)
            ):
                self.packets_shed += 1
                return True
        return False
