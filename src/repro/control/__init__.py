"""Routing functionality: the software control plane.

The paper assigns "routing protocol functionality" to software, and
declares label path creation and distribution out of scope for the
hardware -- but the architecture depends on a populated information
base.  This subpackage supplies that software plane:

* :mod:`repro.control.routing` -- link-state database + Dijkstra SPF,
* :mod:`repro.control.labels` -- per-node label allocation,
* :mod:`repro.control.ldp` -- LDP-style downstream-unsolicited label
  distribution along IGP shortest paths,
* :mod:`repro.control.cspf` -- constraint-based SPF (bandwidth and
  affinity pruning) for traffic engineering,
* :mod:`repro.control.rsvp_te` -- RSVP-TE-style explicit-route LSP
  signalling with bandwidth reservation,
* :mod:`repro.control.cr_ldp` -- CR-LDP-style explicit-route setup
  (the other label distribution protocol the paper names),
* :mod:`repro.control.lsp` -- LSP and tunnel-hierarchy objects.
"""

from repro.control.routing import LinkStateDatabase, SPFResult, shortest_path
from repro.control.labels import LabelAllocator, LabelSpaceExhausted
from repro.control.ldp import LDPProcess
from repro.control.ldp_sessions import MessageLDPProcess
from repro.control.cspf import CSPFError, cspf_path
from repro.control.overload import (
    IngressShedder,
    MessageClass,
    OverloadConfig,
    PriorityControlQueue,
)
from repro.control.rsvp_te import RSVPTESignaler, SetupError, SignalingError
from repro.control.cr_ldp import CRLDPSignaler
from repro.control.frr import FastRerouteManager, ProtectedPath
from repro.control.oam import (
    PingResult,
    TracerouteResult,
    lsp_ping,
    lsp_traceroute,
)
from repro.control.lsp import LSP, TunnelHierarchy

__all__ = [
    "LinkStateDatabase",
    "SPFResult",
    "shortest_path",
    "LabelAllocator",
    "LabelSpaceExhausted",
    "LDPProcess",
    "MessageLDPProcess",
    "cspf_path",
    "CSPFError",
    "RSVPTESignaler",
    "SignalingError",
    "SetupError",
    "OverloadConfig",
    "PriorityControlQueue",
    "IngressShedder",
    "MessageClass",
    "CRLDPSignaler",
    "FastRerouteManager",
    "ProtectedPath",
    "lsp_ping",
    "lsp_traceroute",
    "PingResult",
    "TracerouteResult",
    "LSP",
    "TunnelHierarchy",
]
