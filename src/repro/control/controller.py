"""Centralized Path Computation Element with crash/partition failover.

The ROADMAP's "POX-style centralized controller": a PCE that owns
global CSPF over the telemetry-fed :class:`~repro.obs.topo.TopologyView`
and programs nodes exclusively through the transactional table API
(:class:`~repro.mpls.transaction.TableTransaction`) over an explicit
controller<->node channel.  The channel is deliberately fallible --
bounded priority queues reusing PR 5's overload machinery, per-RPC
timeouts, exponential-backoff reconnect with seeded jitter
(:class:`~repro.control.retry.ReconnectBackoff`) -- because robustness
is the point:

* ``controller-crash`` -- the controller process dies and later warm
  restarts, resyncing from node read-back plus event replay, with
  RFC 3478-style stale-marking of controller-programmed entries;
* ``controller-partition`` -- the channel to one node is cut while the
  controller stays alive.

Each node runs a small :class:`NodeAgent` with a delegation state
machine::

    DISTRIBUTED --adopt--> ADOPTED --hold-timer expiry--+
         ^                                              |
         |            delegation on                     v
         +----- graceful fallback (refresh-in-place) FAILOVER
         |            delegation off                    |
         +<---- ORPHANED (stale flush, blackholes) <----+

With delegation enabled an orphaned node stale-marks its tables and
immediately refreshes them in place from the live distributed control
plane (LDP / message LDP / RSVP-TE+FRR), so **zero FECs blackhole**;
with delegation disabled the stale entries are flushed after
``stale_hold`` and traffic blackholes until the controller re-adopts.
Re-adoption diffs intended vs. actual state through one atomic
:class:`TableTransaction` per node -- no duplicate or partial
programming, no split brain (the controller never writes to a node it
has not re-adopted, and nodes never accept stale controller writes
because orphaned channels drop in-flight RPCs).

Determinism: all iteration is over sorted keys, all randomness flows
from the seeded backoff, and every event/metric emission is gated on
telemetry being enabled -- the same (scenario, seed) always produces
the same chaos report, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.control.cspf import CSPFError, cspf_over_view
from repro.control.overload import PriorityControlQueue, classify_message
from repro.control.retry import ReconnectBackoff
from repro.mpls.fec import FEC
from repro.mpls.transaction import TableTransaction
from repro.obs.events import ControllerFailover, ControllerReadopt
from repro.obs.telemetry import get_telemetry

#: NodeAgent delegation states (also the adoption-gauge values).
STATE_DISTRIBUTED = 0
STATE_ADOPTED = 1
STATE_ORPHANED = 2

_STATE_NAMES = {
    STATE_DISTRIBUTED: "distributed",
    STATE_ADOPTED: "adopted",
    STATE_ORPHANED: "orphaned",
}


@dataclass
class ControllerConfig:
    """Knobs for the PCE controller and its node channels.

    Parsed from the scenario's ``controller`` key; unknown keys are
    rejected (:meth:`from_dict`) so typos fail loudly, mirroring
    :class:`~repro.control.overload.OverloadConfig`.
    """

    enabled: bool = True
    #: graceful fallback to distributed control on hold expiry; when
    #: False orphaned nodes flush stale state and blackhole instead
    delegation: bool = True
    #: when the controller first adopts the network (sim seconds)
    adopt_at: float = 0.05
    keepalive_interval: float = 0.02
    #: hold timer: an adopted node falls back after this long without
    #: hearing the controller
    hold_time: float = 0.08
    #: how long stale-marked entries survive before the flush timer
    stale_hold: float = 0.1
    #: one-way channel latency per RPC leg
    rpc_delay: float = 1e-3
    rpc_timeout: float = 0.02
    #: keepalive timeouts before the controller releases a node
    missed_rpc_limit: int = 3
    # bounded channel queue (PR 5 overload machinery)
    queue_capacity: int = 32
    high_watermark: int = 24
    low_watermark: int = 8
    # seeded reconnect backoff (shared repro.control.retry policy)
    retry_initial: float = 20e-3
    retry_max: float = 0.5
    max_retries: int = 20
    retry_jitter: float = 0.1
    #: scheduling horizon -- periodic timers stop re-arming past it
    horizon: Optional[float] = None

    def __post_init__(self) -> None:
        if self.keepalive_interval <= 0:
            raise ValueError("keepalive_interval must be > 0")
        if self.hold_time <= self.keepalive_interval:
            raise ValueError(
                "hold_time must exceed keepalive_interval (a single "
                "on-time keepalive must refresh the hold timer)"
            )
        if self.stale_hold <= 0:
            raise ValueError("stale_hold must be > 0")
        if self.rpc_timeout <= 0 or self.rpc_delay < 0:
            raise ValueError("rpc_timeout must be > 0 and rpc_delay >= 0")
        if self.missed_rpc_limit < 1:
            raise ValueError("missed_rpc_limit must be >= 1")
        if not (
            0
            <= self.low_watermark
            < self.high_watermark
            <= self.queue_capacity
        ):
            raise ValueError(
                "watermarks must satisfy 0 <= low < high <= capacity"
            )
        if not (0.0 <= self.retry_jitter < 1.0):
            raise ValueError("retry_jitter must be in [0, 1)")

    @classmethod
    def from_dict(
        cls, raw: Mapping[str, Any], horizon: Optional[float] = None
    ) -> "ControllerConfig":
        known: Dict[str, Any] = {
            "enabled": bool,
            "delegation": bool,
            "adopt_at": float,
            "keepalive_interval": float,
            "hold_time": float,
            "stale_hold": float,
            "rpc_delay": float,
            "rpc_timeout": float,
            "missed_rpc_limit": int,
            "queue_capacity": int,
            "high_watermark": int,
            "low_watermark": int,
            "retry_initial": float,
            "retry_max": float,
            "max_retries": int,
            "retry_jitter": float,
        }
        unknown = set(raw) - set(known)
        if unknown:
            raise ValueError(
                f"unknown controller key(s): {', '.join(sorted(unknown))}"
            )
        kwargs = {key: cast(raw[key]) for key, cast in known.items()
                  if key in raw}
        return cls(horizon=horizon, **kwargs)


class _Rpc:
    """One in-flight controller<->node RPC (bookkeeping only)."""

    __slots__ = ("kind", "execute", "on_reply", "on_timeout", "done",
                 "timed_out")

    def __init__(
        self,
        kind: str,
        execute: Callable[[], Any],
        on_reply: Optional[Callable[[Any], None]],
        on_timeout: Optional[Callable[[], None]],
    ) -> None:
        self.kind = kind
        self.execute = execute
        self.on_reply = on_reply
        self.on_timeout = on_timeout
        self.done = False
        self.timed_out = False


class ControllerChannel:
    """The fault-injectable channel between the controller and one node.

    A bounded :class:`PriorityControlQueue` (PR 5) sits between offer
    and service, so keepalives outrank table writes under pressure; a
    partition (``cut``) or a dead controller makes the channel unusable
    and every RPC on it times out instead of silently succeeding.
    """

    def __init__(
        self, controller: "PCEController", node: str,
        config: ControllerConfig,
    ) -> None:
        self.controller = controller
        self.node = node
        self.config = config
        self.queue = PriorityControlQueue(
            capacity=config.queue_capacity,
            high_watermark=config.high_watermark,
            low_watermark=config.low_watermark,
            prioritized=True,
        )
        self.partitioned = False
        self.cut_at: Optional[float] = None
        self.restored_at: Optional[float] = None
        self.rpcs = 0
        self.replies = 0
        self.timeouts = 0
        self.drops_by_cause: Dict[str, int] = {}

    # -- fault hooks ---------------------------------------------------
    def cut(self) -> None:
        if self.partitioned:
            return
        self.partitioned = True
        self.cut_at = self.controller.scheduler.now

    def restore(self) -> None:
        if not self.partitioned:
            return
        self.partitioned = False
        self.restored_at = self.controller.scheduler.now

    @property
    def usable(self) -> bool:
        return not self.partitioned and self.controller.alive

    # -- the RPC machine ----------------------------------------------
    def _drop(self, cause: str, cls_name: str) -> None:
        self.drops_by_cause[cause] = self.drops_by_cause.get(cause, 0) + 1
        tel = get_telemetry()
        if tel.enabled:
            tel.controller_channel_drops.labels(self.node, cause).inc()
            _ = cls_name  # class already folded into the cause ledger

    def _gauge_depth(self) -> None:
        tel = get_telemetry()
        if tel.enabled:
            tel.controller_channel_depth.labels(self.node).set(
                len(self.queue)
            )

    def rpc(
        self,
        kind: str,
        execute: Callable[[], Any],
        on_reply: Optional[Callable[[Any], None]] = None,
        on_timeout: Optional[Callable[[], None]] = None,
    ) -> None:
        """Issue one RPC.  ``execute`` runs node-side after one channel
        delay; ``on_reply`` runs controller-side one delay later;
        ``on_timeout`` fires at ``rpc_timeout`` if no reply landed."""
        sched = self.controller.scheduler
        self.rpcs += 1
        item = _Rpc(kind, execute, on_reply, on_timeout)
        cls = classify_message(kind)

        def expire() -> None:
            if item.done:
                return
            item.timed_out = True
            self.timeouts += 1
            if item.on_timeout is not None:
                item.on_timeout()

        if not self.usable:
            self._drop("partition" if self.partitioned else "crash",
                       cls.name)
            sched.after(self.config.rpc_timeout, expire)
            return

        accepted, shed = self.queue.offer(item, cls)
        for _dropped, dropped_cls, cause in shed:
            self._drop(cause, dropped_cls.name)
        self._gauge_depth()
        if not accepted:
            sched.after(self.config.rpc_timeout, expire)
            return
        sched.after(self.config.rpc_timeout, expire)
        sched.after(self.config.rpc_delay, self._service)

    def _service(self) -> None:
        popped = self.queue.pop()
        self._gauge_depth()
        if popped is None:
            return
        item, cls = popped
        if item.timed_out:
            return
        if not self.usable:
            # the request was in flight when the channel died
            self._drop("lost", cls.name)
            return
        result = item.execute()
        sched = self.controller.scheduler

        def reply() -> None:
            if item.timed_out or not self.usable:
                return
            item.done = True
            self.replies += 1
            if item.on_reply is not None:
                item.on_reply(result)

        sched.after(self.config.rpc_delay, reply)


class NodeAgent:
    """The node-side delegation state machine.

    Watches controller liveness through ``last_heard`` (refreshed by
    every keepalive/read/write that reaches the node) and falls back to
    distributed control when the hold timer expires."""

    def __init__(
        self, controller: "PCEController", name: str,
        config: ControllerConfig,
    ) -> None:
        self.controller = controller
        self.name = name
        self.config = config
        self.state = STATE_DISTRIBUTED
        self.last_heard: Optional[float] = None

    def set_state(self, state: int) -> None:
        self.state = state
        tel = get_telemetry()
        if tel.enabled:
            tel.controller_adoption.labels(self.name).set(state)

    def tick(self) -> None:
        """Periodic hold-timer check (runs every keepalive interval)."""
        ctl = self.controller
        now = ctl.scheduler.now
        if (
            self.state == STATE_ADOPTED
            and self.last_heard is not None
            and now - self.last_heard > self.config.hold_time
        ):
            self._failover(now)
        horizon = self.config.horizon
        if (
            horizon is None
            or now + self.config.keepalive_interval <= horizon
        ):
            ctl.scheduler.after(self.config.keepalive_interval, self.tick)

    def _failover(self, now: float) -> None:
        """Hold timer expired: fall back (delegation on) or orphan."""
        ctl = self.controller
        channel = ctl.channels[self.name]
        if channel.partitioned:
            reason = "partition"
            cause_at = channel.cut_at
        else:
            reason = "crash"
            cause_at = ctl._crash_at
        detect_s = now - cause_at if cause_at is not None else 0.0

        node = ctl.network.nodes[self.name]
        orphaned = node.ilm.mark_all_stale() + node.ftn.mark_all_stale()
        for fec, ingress, _egress in ctl.fec_specs:
            ctl.orphaned_ever.add(f"{fec}@{ingress}")
        ctl.adopted.discard(self.name)

        if self.config.delegation:
            # graceful fallback: refresh the stale entries in place
            # from the live distributed control plane -- forwarding
            # state never leaves the tables, so nothing blackholes
            ctl._refresh_distributed(self.name)
            self.set_state(STATE_DISTRIBUTED)
        else:
            self.set_state(STATE_ORPHANED)
        ctl.scheduler.after(self.config.stale_hold, self._flush_stale)

        ctl.failovers.append(
            {
                "at": now,
                "node": self.name,
                "reason": reason,
                "detect_s": detect_s,
                "orphaned_fecs": orphaned,
                "delegated": self.config.delegation,
            }
        )
        tel = get_telemetry()
        if tel.enabled:
            tel.controller_failovers.labels(reason).inc()
            if self.config.delegation:
                tel.controller_delegations.labels(self.name).inc()
            event = ControllerFailover(
                node=self.name,
                reason=reason,
                delegated=self.config.delegation,
                orphaned_fecs=orphaned,
                detect_s=detect_s,
            )
            event.time = now
            tel.events.emit(event)
        ctl._checkpoint_blackholes()
        ctl._schedule_reconnect(self.name)

    def _flush_stale(self) -> None:
        """The RFC 3478-style stale-hold timer: anything still marked
        stale (nothing after a graceful fallback, everything on an
        orphaned node) is removed."""
        node = self.controller.network.nodes[self.name]
        node.ilm.flush_stale()
        node.ftn.flush_stale()
        self.controller._checkpoint_blackholes()


class PCEController:
    """The centralized Path Computation Element.

    Owns global CSPF intent over the observed topology, adopts every
    node over its channel, keeps them alive with keepalives, and
    survives its own crash/partition faults by releasing, backing off
    and re-adopting with a single atomic resync transaction per node.
    """

    def __init__(
        self,
        network: Any,
        config: ControllerConfig,
        ldp: Any = None,
        message_ldp: Any = None,
        frr: Any = None,
        fec_specs: Sequence[Tuple[FEC, str, str]] = (),
        seed: int = 0,
    ) -> None:
        self.network = network
        self.scheduler = network.scheduler
        self.config = config
        self.ldp = ldp
        self.message_ldp = message_ldp
        self.frr = frr
        #: sorted (fec, ingress, egress) triples the PCE is responsible
        #: for -- the blackhole accounting walks exactly these
        self.fec_specs: List[Tuple[FEC, str, str]] = sorted(
            fec_specs, key=lambda t: (str(t[0]), t[1], t[2])
        )
        self.seed = seed
        self.alive = True
        self.backoff = ReconnectBackoff(
            initial=config.retry_initial,
            maximum=config.retry_max,
            max_retries=config.max_retries,
            jitter=config.retry_jitter,
            seed=seed,
        )
        self.channels: Dict[str, ControllerChannel] = {}
        self.agents: Dict[str, NodeAgent] = {}
        for name in sorted(network.nodes):
            self.channels[name] = ControllerChannel(self, name, config)
            self.agents[name] = NodeAgent(self, name, config)
        self.adopted: Set[str] = set()
        # ledgers (sorted-deterministic; the report section reads them)
        self.adoptions: List[Dict[str, Any]] = []
        self.failovers: List[Dict[str, Any]] = []
        self.readopts: List[Dict[str, Any]] = []
        self.crashes = 0
        self.restarts = 0
        self.resync_reads = 0
        self.resync_transactions = 0
        self.resync_rewrites = 0
        self.paths_computed = 0
        self.view_agreements = 0
        self.blackholed_ever: Set[str] = set()
        self.orphaned_ever: Set[str] = set()
        self._crash_at: Optional[float] = None
        self._restart_at: Optional[float] = None
        self._missed: Dict[str, int] = {}
        self._reconnecting: Set[str] = set()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Arm adoption and the keepalive machinery (no-op when the
        scenario asked for ``enabled: false``)."""
        if not self.config.enabled:
            return
        self.scheduler.at(self.config.adopt_at, self._adopt_all)
        first_tick = self.config.adopt_at + self.config.keepalive_interval
        self.scheduler.at(first_tick, self._keepalive_all)
        for name in sorted(self.agents):
            self.scheduler.at(first_tick, self.agents[name].tick)

    def _adopt_all(self) -> None:
        for name in sorted(self.channels):
            self._adopt(name)

    def _adopt(self, name: str) -> None:
        channel = self.channels[name]
        agent = self.agents[name]
        node = self.network.nodes[name]

        def execute() -> Tuple[int, int]:
            agent.last_heard = self.scheduler.now
            return (len(node.ilm), len(node.ftn))

        def on_reply(counts: Tuple[int, int]) -> None:
            self.adopted.add(name)
            agent.set_state(STATE_ADOPTED)
            agent.last_heard = self.scheduler.now
            self.adoptions.append(
                {
                    "at": self.scheduler.now,
                    "node": name,
                    "ilm_entries": counts[0],
                    "ftn_entries": counts[1],
                }
            )
            if len(self.adopted) == len(self.channels):
                self._checkpoint_blackholes()
                self._compute_intent()

        channel.rpc("ctrl-read", execute, on_reply=on_reply)

    # -- global CSPF intent --------------------------------------------
    def _compute_intent(self) -> None:
        """Global CSPF over the observed topology view: for every FEC
        the PCE owns, compute the intended path and count how often the
        view-derived path agrees with the live forwarding trace."""
        view = self._view_data()
        for fec, ingress, egress in self.fec_specs:
            try:
                path = cspf_over_view(view, ingress, egress)
            except CSPFError:
                continue
            self.paths_computed += 1
            actual = self.network.fec_trace(ingress, fec)
            if actual is not None and actual == path:
                self.view_agreements += 1

    def _view_data(self) -> Dict[str, Any]:
        """The topology the PCE plans over: the telemetry-fed
        TopologyView when an observer is attached, else a view derived
        from ground truth (keeps the PCE usable without telemetry)."""
        tel = get_telemetry()
        observer = getattr(tel, "topo", None)
        if observer is not None:
            return observer.live_view().data
        down = getattr(self.network, "_down_nodes", {})
        nodes = {
            name: ("down" if name in down else "up")
            for name in sorted(self.network.nodes)
        }
        links: Dict[str, str] = {}
        for a, b in self.network.topology.links:
            key = f"{min(a, b)}|{max(a, b)}"
            links[key] = (
                "up" if self.network.link_is_up(a, b) else "down"
            )
        return {"nodes": nodes, "links": links}

    # -- keepalives ----------------------------------------------------
    def _keepalive_all(self) -> None:
        now = self.scheduler.now
        if self.alive:
            for name in sorted(self.adopted):
                self._keepalive(name)
        horizon = self.config.horizon
        if (
            horizon is None
            or now + self.config.keepalive_interval <= horizon
        ):
            self.scheduler.after(
                self.config.keepalive_interval, self._keepalive_all
            )

    def _keepalive(self, name: str) -> None:
        channel = self.channels[name]
        agent = self.agents[name]

        def execute() -> None:
            agent.last_heard = self.scheduler.now

        def on_reply(_result: None) -> None:
            self._missed[name] = 0

        def on_timeout() -> None:
            missed = self._missed.get(name, 0) + 1
            self._missed[name] = missed
            if (
                missed >= self.config.missed_rpc_limit
                and name in self.adopted
            ):
                # release the node; the agent's own hold timer drives
                # its fallback, the controller starts reconnecting
                self.adopted.discard(name)
                self._schedule_reconnect(name)

        channel.rpc(
            "ctrl-keepalive", execute,
            on_reply=on_reply, on_timeout=on_timeout,
        )

    # -- fault surface -------------------------------------------------
    def crash(self) -> None:
        """``controller-crash`` inject: the PCE dies mid-flight."""
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self._crash_at = self.scheduler.now

    def restart(self) -> None:
        """``controller-crash`` heal: warm restart.  All adoption state
        is gone; every node is re-adopted through the resync path."""
        if self.alive:
            return
        self.alive = True
        self.restarts += 1
        self._restart_at = self.scheduler.now
        self.adopted.clear()
        for name in sorted(self.channels):
            self._schedule_reconnect(name)

    def cut(self, node: str) -> None:
        """``controller-partition`` inject for one node."""
        self.channels[node].cut()

    def restore(self, node: str) -> None:
        """``controller-partition`` heal for one node."""
        self.channels[node].restore()

    # -- reconnect + resync --------------------------------------------
    def _schedule_reconnect(self, name: str) -> None:
        if not self.config.enabled or name in self._reconnecting:
            return
        self._reconnecting.add(name)
        key = ("controller", name)
        self.scheduler.after(
            self.backoff.first_delay(key),
            lambda: self._try_readopt(name, attempt=1),
        )

    def _try_readopt(self, name: str, attempt: int) -> None:
        if name in self.adopted:
            self._reconnecting.discard(name)
            return
        channel = self.channels[name]
        if channel.usable:
            self._resync(name)
            return
        if self.backoff.exhausted(attempt):
            self._reconnecting.discard(name)
            return
        key = ("controller", name)
        self.scheduler.after(
            self.backoff.next_delay(key, attempt),
            lambda: self._try_readopt(name, attempt + 1),
        )

    def _resync(self, name: str) -> None:
        """Re-adopt one node: read-back, event replay, intent diff, one
        atomic write transaction, then mark adopted."""
        channel = self.channels[name]
        agent = self.agents[name]
        node = self.network.nodes[name]

        def read() -> Tuple[int, int]:
            agent.last_heard = self.scheduler.now
            return (len(node.ilm), len(node.ftn))

        def on_read(_counts: Tuple[int, int]) -> None:
            self.resync_reads += 1
            tel = get_telemetry()
            observer = getattr(tel, "topo", None)
            if observer is not None:
                # event replay: reconcile against the telemetry-fed
                # view (the observer replayed everything we missed)
                self._compute_intent()
            self._write(name)

        def on_read_timeout() -> None:
            self._reconnecting.discard(name)
            self._schedule_reconnect(name)

        channel.rpc(
            "ctrl-read", read,
            on_reply=on_read, on_timeout=on_read_timeout,
        )

    def _write(self, name: str) -> None:
        channel = self.channels[name]
        agent = self.agents[name]
        node = self.network.nodes[name]

        def write() -> int:
            """Node-side: one atomic transaction that diffs intended
            vs. actual -- refresh-in-place of every entry the
            distributed truth wants, then flush whatever is left
            stale.  Commit or nothing: no partial programming."""
            agent.last_heard = self.scheduler.now
            node.ilm.mark_all_stale()
            node.ftn.mark_all_stale()
            with TableTransaction([node.ilm, node.ftn]):
                rewrites = self._refresh_distributed(name)
            node.ilm.flush_stale()
            node.ftn.flush_stale()
            self.resync_transactions += 1
            self.resync_rewrites += rewrites
            return rewrites

        def on_reply(rewrites: int) -> None:
            now = self.scheduler.now
            self._reconnecting.discard(name)
            self.adopted.add(name)
            self._missed[name] = 0
            agent.set_state(STATE_ADOPTED)
            agent.last_heard = now
            reason, anchor = self._readopt_anchor(name, now)
            restore_s = now - anchor if anchor is not None else 0.0
            self.readopts.append(
                {
                    "at": now,
                    "node": name,
                    "reason": reason,
                    "rewrites": rewrites,
                    "restore_s": restore_s,
                }
            )
            tel = get_telemetry()
            if tel.enabled:
                tel.controller_resyncs.labels(name).inc()
                event = ControllerReadopt(
                    node=name,
                    reason=reason,
                    rewrites=rewrites,
                    restore_s=restore_s,
                )
                event.time = now
                tel.events.emit(event)
            self._checkpoint_blackholes()

        def on_timeout() -> None:
            self._reconnecting.discard(name)
            self._schedule_reconnect(name)

        channel.rpc(
            "ctrl-write", write,
            on_reply=on_reply, on_timeout=on_timeout,
        )

    def _readopt_anchor(
        self, name: str, now: float
    ) -> Tuple[str, Optional[float]]:
        """What outage does this readopt close, and when did service
        become restorable (restart / partition heal)?"""
        channel = self.channels[name]
        candidates: List[Tuple[float, str]] = []
        if self._restart_at is not None and self._restart_at <= now:
            candidates.append((self._restart_at, "crash"))
        if (
            channel.restored_at is not None
            and channel.restored_at <= now
        ):
            candidates.append((channel.restored_at, "partition"))
        if not candidates:
            return ("adopt", None)
        anchor, reason = max(candidates)
        return (reason, anchor)

    # -- delegation refresh --------------------------------------------
    def _refresh_distributed(self, name: str) -> int:
        """Refresh one node's tables in place from whatever distributed
        control plane this scenario runs.  Returns rewrite count."""
        rewrites = 0
        if self.ldp is not None:
            ilm, ftn = self.ldp.refresh_node(name)
            rewrites += ilm + ftn
        if self.message_ldp is not None:
            ilm, ftn = self.message_ldp.refresh_node(name)
            rewrites += ilm + ftn
        if self.frr is not None:
            rewrites += self.frr.signaler.refresh_node(name)
            rewrites += self.frr.refresh_ingress(name)
        return rewrites

    # -- blackhole accounting ------------------------------------------
    def blackholed_now(self) -> List[str]:
        """FECs with no working forwarding path right now (sorted)."""
        holes: List[str] = []
        for fec, ingress, _egress in self.fec_specs:
            if self.network.fec_trace(ingress, fec) is None:
                holes.append(f"{fec}@{ingress}")
        return holes

    def _checkpoint_blackholes(self) -> None:
        self.blackholed_ever.update(self.blackholed_now())
