"""Per-node label allocation.

Every LSR manages its own (platform-wide) label space: labels it hands
out to upstream neighbours and later installs in its ILM.  Reserved
labels 0-15 are never allocated; freed labels are recycled
lowest-first so long-running control planes do not creep through the
20-bit space.
"""

from __future__ import annotations

import heapq
from typing import List, Set

from repro.mpls.label import LABEL_MAX, RESERVED_LABEL_MAX


class LabelSpaceExhausted(Exception):
    """No labels left to allocate (2^20 - 16 of them are gone)."""


class LabelAllocator:
    """Allocates labels from ``first`` upward, recycling freed ones."""

    def __init__(self, first: int = RESERVED_LABEL_MAX + 1) -> None:
        if first <= RESERVED_LABEL_MAX:
            raise ValueError(
                f"allocation must start above the reserved range, got {first}"
            )
        self._next = first
        self._free: List[int] = []
        self._allocated: Set[int] = set()

    def allocate(self) -> int:
        if self._free:
            label = heapq.heappop(self._free)
        else:
            if self._next > LABEL_MAX:
                raise LabelSpaceExhausted("20-bit label space exhausted")
            label = self._next
            self._next += 1
        self._allocated.add(label)
        return label

    def release(self, label: int) -> None:
        if label not in self._allocated:
            raise KeyError(f"label {label} was not allocated here")
        self._allocated.discard(label)
        heapq.heappush(self._free, label)

    @property
    def in_use(self) -> int:
        return len(self._allocated)

    def is_allocated(self, label: int) -> bool:
        return label in self._allocated
