"""Link-state routing: the IGP beneath the MPLS control plane.

The paper lists OSPF among the protocols "typically used with MPLS to
determine the LSPs".  This module provides the piece every label
distribution scheme needs: a link-state database (a view of the
:class:`~repro.net.topology.Topology`) and Dijkstra shortest-path
first, yielding per-destination next hops and full paths.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.topology import Topology, TopologyError


@dataclass(frozen=True)
class SPFResult:
    """Shortest-path tree from one source."""

    source: str
    #: destination -> total metric
    cost: Dict[str, float]
    #: destination -> full node path including source and destination
    paths: Dict[str, List[str]]

    def next_hop(self, destination: str) -> Optional[str]:
        """The first hop towards ``destination``; None if unreachable
        or the destination is the source itself."""
        path = self.paths.get(destination)
        if path is None or len(path) < 2:
            return None
        return path[1]

    def reachable(self, destination: str) -> bool:
        return destination in self.paths


class LinkStateDatabase:
    """A node's view of the network graph.

    In a real IGP the LSDB is flooded; here every node shares the one
    authoritative :class:`Topology`, which models a converged network.
    Link removals (failures) are visible to all nodes on the next SPF
    run -- re-convergence is instantaneous by construction, which is
    the right model for a paper whose scope starts *after* routing has
    converged.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._spf_runs = 0

    @property
    def spf_runs(self) -> int:
        return self._spf_runs

    def spf(self, source: str) -> SPFResult:
        """Dijkstra from ``source`` over the link metrics."""
        topo = self.topology
        if not topo.has_node(source):
            raise TopologyError(f"unknown SPF source {source!r}")
        self._spf_runs += 1
        dist: Dict[str, float] = {source: 0.0}
        prev: Dict[str, str] = {}
        visited = set()
        heap = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for neighbor in topo.neighbors(node):
                if neighbor in visited:
                    continue
                weight = topo.link(node, neighbor).metric
                if weight < 0:
                    raise TopologyError(
                        f"negative metric on {node}-{neighbor}"
                    )
                candidate = d + weight
                if candidate < dist.get(neighbor, float("inf")):
                    dist[neighbor] = candidate
                    prev[neighbor] = node
                    heapq.heappush(heap, (candidate, neighbor))
        paths: Dict[str, List[str]] = {source: [source]}
        for node in dist:
            if node == source:
                continue
            path = [node]
            while path[-1] != source:
                path.append(prev[path[-1]])
            paths[node] = list(reversed(path))
        return SPFResult(source=source, cost=dist, paths=paths)


def shortest_path(
    topology: Topology, source: str, destination: str
) -> Optional[List[str]]:
    """Convenience: the metric-shortest node path, or None."""
    result = LinkStateDatabase(topology).spf(source)
    return result.paths.get(destination)
