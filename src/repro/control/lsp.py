"""Label switched paths and tunnel hierarchy (paper Figures 2-3).

An :class:`LSP` records everything the control plane decided for one
path: the node sequence, the label used on each hop, reserved
bandwidth, and CoS.  :class:`TunnelHierarchy` implements the paper's
Figure 3: routing one LSP *through* another by pushing the outer
tunnel's label on top at the tunnel head -- the mechanism behind
aggregation ("merging") of traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class LSP:
    """One signalled label switched path.

    ``hop_labels[i]`` is the label carried on the link from
    ``path[i]`` to ``path[i+1]`` (so there are ``len(path) - 1`` of
    them; the last may be None when penultimate-hop popping was
    negotiated).
    """

    name: str
    path: List[str]
    hop_labels: List[Optional[int]]
    bandwidth_bps: float = 0.0
    cos: Optional[int] = None
    #: signalling protocol that created it ("rsvp-te", "cr-ldp", "ldp")
    protocol: str = "static"
    up: bool = True
    #: RFC 3209 priorities, 0 (best) .. 7 (worst).  ``setup_priority``
    #: is the strength of this LSP's admission request; ``hold_priority``
    #: is how hard it holds its reservation once established.  An LSP
    #: may preempt another only when its setup priority is numerically
    #: lower than the victim's hold priority.
    setup_priority: int = 4
    hold_priority: int = 4

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError(f"LSP {self.name}: a path needs >= 2 nodes")
        if len(self.hop_labels) != len(self.path) - 1:
            raise ValueError(
                f"LSP {self.name}: {len(self.path)} nodes need "
                f"{len(self.path) - 1} hop labels, got {len(self.hop_labels)}"
            )

    @property
    def ingress(self) -> str:
        return self.path[0]

    @property
    def egress(self) -> str:
        return self.path[-1]

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    def links(self) -> List[Tuple[str, str]]:
        return list(zip(self.path, self.path[1:]))

    def label_at(self, node: str) -> Optional[int]:
        """The label this LSP carries when *leaving* ``node``."""
        try:
            idx = self.path.index(node)
        except ValueError:
            raise KeyError(f"{node} is not on LSP {self.name}") from None
        if idx == len(self.path) - 1:
            return None  # the egress emits no label
        return self.hop_labels[idx]


class TunnelHierarchy:
    """Nests LSPs: an inner LSP rides an outer tunnel (Figure 3).

    The outer tunnel's ingress and egress must both lie on the inner
    LSP's path, in order.  The hierarchy answers, for any node, the
    stack of labels a packet of the inner LSP carries there -- which is
    what the paper's multi-level information base switches on.
    """

    def __init__(self) -> None:
        #: inner LSP name -> outer LSP name
        self._parent: Dict[str, str] = {}
        self._lsps: Dict[str, LSP] = {}

    def add(self, lsp: LSP) -> None:
        if lsp.name in self._lsps:
            raise ValueError(f"LSP {lsp.name!r} already registered")
        self._lsps[lsp.name] = lsp

    def lsp(self, name: str) -> LSP:
        return self._lsps[name]

    def nest(self, inner: str, outer: str) -> None:
        """Declare that ``inner`` rides through tunnel ``outer``."""
        inner_lsp = self._lsps[inner]
        outer_lsp = self._lsps[outer]
        try:
            i_in = inner_lsp.path.index(outer_lsp.ingress)
            i_out = inner_lsp.path.index(outer_lsp.egress)
        except ValueError:
            raise ValueError(
                f"tunnel {outer!r} endpoints are not on {inner!r}'s path"
            ) from None
        if i_in >= i_out:
            raise ValueError(
                f"tunnel {outer!r} endpoints appear out of order on "
                f"{inner!r}'s path"
            )
        if inner in self._parent:
            raise ValueError(f"{inner!r} is already nested")
        # depth check: no chain through this new edge may exceed the
        # 3 label-stack levels the architecture supports.  The chain
        # length is (descendants below `inner`) + (ancestors above
        # `outer`) + the two endpoints themselves.
        self._parent[inner] = outer
        try:
            for name in self._lsps:
                depth = 1
                ancestor = self._parent.get(name)
                while ancestor is not None:
                    depth += 1
                    ancestor = self._parent.get(ancestor)
                if depth > 3:
                    raise ValueError(
                        f"nesting {inner!r} in {outer!r} exceeds the 3 "
                        "label-stack levels the architecture supports"
                    )
        except ValueError:
            del self._parent[inner]
            raise

    def parent(self, name: str) -> Optional[str]:
        return self._parent.get(name)

    def stack_at(self, inner: str, node: str) -> List[int]:
        """The label stack (top first) a packet of LSP ``inner``
        carries when leaving ``node``.

        Defined for nodes on the *inner LSP's own path* (where both the
        customer and any enclosing tunnel labels are known); for pure
        tunnel-transit nodes the inner label is opaque to the control
        plane and an empty list is returned.
        """
        stack: List[int] = []
        current = inner
        while current is not None:
            lsp = self._lsps[current]
            if node in lsp.path and node != lsp.egress:
                outer_name = self._parent.get(current)
                label = lsp.label_at(node)
                if label is not None:
                    stack.insert(0, label)
                # only consult the outer tunnel while inside it
                if outer_name is not None:
                    outer = self._lsps[outer_name]
                    if node in outer.path and node != outer.egress:
                        current = outer_name
                        continue
            break
        return stack

    def depth_at(self, inner: str, node: str) -> int:
        return len(self.stack_at(inner, node))
