"""Constraint-based shortest path first (traffic engineering).

The paper's Section 1 argues MPLS suits traffic engineering because it
supports "explicit path specification" and congestion avoidance.  CSPF
is how a head-end computes those explicit paths: run SPF over the
subgraph of links that satisfy the constraints (enough unreserved
bandwidth, matching administrative affinity), so a new LSP avoids links
that are already committed.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.net.topology import Topology


class CSPFError(Exception):
    """No path satisfies the constraints."""


def cspf_path(
    topology: Topology,
    source: str,
    destination: str,
    bandwidth_bps: float = 0.0,
    include_affinity: int = 0,
    exclude_affinity: int = 0,
    avoid_nodes: Optional[Set[str]] = None,
    avoid_links: Optional[Iterable[Tuple[str, str]]] = None,
) -> List[str]:
    """The metric-shortest path whose links all satisfy the constraints.

    Parameters
    ----------
    bandwidth_bps:
        Every link on the path must have at least this much
        *unreserved* bandwidth in the travel direction.
    include_affinity:
        Bits that must all be set in a link's affinity.
    exclude_affinity:
        Bits that must all be clear.
    avoid_nodes:
        Nodes to prune (e.g. for computing a disjoint backup path).
    avoid_links:
        Links to prune, given as (a, b) pairs in either orientation
        (e.g. the shortfall links a preemption victim must vacate).

    Raises :class:`CSPFError` when no such path exists.
    """
    avoid = avoid_nodes or set()
    pruned_links: Set[Tuple[str, str]] = {
        (a, b) if a <= b else (b, a) for a, b in (avoid_links or ())
    }
    if source in avoid or destination in avoid:
        raise CSPFError("source or destination is excluded")

    def usable(a: str, b: str) -> bool:
        if ((a, b) if a <= b else (b, a)) in pruned_links:
            return False
        attrs = topology.link(a, b)
        if attrs.reservable(a) + 1e-9 < bandwidth_bps:
            return False
        if (attrs.affinity & include_affinity) != include_affinity:
            return False
        if attrs.affinity & exclude_affinity:
            return False
        return True

    dist: Dict[str, float] = {source: 0.0}
    prev: Dict[str, str] = {}
    visited: Set[str] = set()
    heap = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == destination:
            break
        for neighbor in topology.neighbors(node):
            if neighbor in visited or neighbor in avoid:
                continue
            if not usable(node, neighbor):
                continue
            candidate = d + topology.link(node, neighbor).metric
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                prev[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    if destination not in dist:
        raise CSPFError(
            f"no path {source} -> {destination} satisfies the constraints "
            f"(bw={bandwidth_bps:g} bps, include={include_affinity:#x}, "
            f"exclude={exclude_affinity:#x})"
        )
    path = [destination]
    while path[-1] != source:
        path.append(prev[path[-1]])
    return list(reversed(path))


def cspf_over_view(
    view_data: Dict[str, object],
    source: str,
    destination: str,
    avoid_nodes: Optional[Set[str]] = None,
) -> List[str]:
    """Shortest path over an **observed** topology view.

    This is the PCE's planning input: ``view_data`` is the plain-dict
    payload of :class:`~repro.obs.topo.TopologyView` (``nodes`` ->
    state, ``links`` keyed ``"a|b"`` -> ``"up"``/``"degraded"``/
    ``"down"``).  Down links and down nodes are pruned; degraded links
    still forward.  Hop count is the metric (the view carries no
    per-link metrics), with sorted-neighbor tie-breaking so the same
    view always yields the same path.

    Raises :class:`CSPFError` when the view shows no usable path.
    """
    avoid = avoid_nodes or set()
    nodes: Dict[str, str] = dict(view_data.get("nodes", {}))  # type: ignore[arg-type]
    links: Dict[str, str] = dict(view_data.get("links", {}))  # type: ignore[arg-type]

    def node_up(name: str) -> bool:
        return nodes.get(name, "down") != "down" and name not in avoid

    if not node_up(source) or not node_up(destination):
        raise CSPFError(
            f"{source} -> {destination}: endpoint down in the view"
        )

    adjacency: Dict[str, List[str]] = {}
    for key, state in links.items():
        if state == "down":
            continue
        a, b = key.split("|")
        if not (node_up(a) and node_up(b)):
            continue
        adjacency.setdefault(a, []).append(b)
        adjacency.setdefault(b, []).append(a)
    for neighbors in adjacency.values():
        neighbors.sort()

    dist: Dict[str, int] = {source: 0}
    prev: Dict[str, str] = {}
    visited: Set[str] = set()
    heap: List[Tuple[int, str]] = [(0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == destination:
            break
        for neighbor in adjacency.get(node, ()):
            if neighbor in visited:
                continue
            candidate = d + 1
            if candidate < dist.get(neighbor, 1 << 30):
                dist[neighbor] = candidate
                prev[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    if destination not in dist:
        raise CSPFError(
            f"no observed path {source} -> {destination} "
            "(the view shows the destination unreachable)"
        )
    path = [destination]
    while path[-1] != source:
        path.append(prev[path[-1]])
    return list(reversed(path))
