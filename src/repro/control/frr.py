"""Fast reroute: pre-signalled backup LSPs (path protection).

The traffic-engineering payoff of explicit routes that the paper's
Section 1 motivates ("efficient maintenance of those paths"): because
LSPs are explicitly routed, a head-end can pre-signal a disjoint backup
*before* anything fails and switch traffic onto it with a single FTN
rewrite -- no reconvergence, no re-signalling on the failure path.

:class:`FastRerouteManager` protects a FEC with a primary/backup LSP
pair (the backup avoids every intermediate node of the primary when
the topology allows, otherwise it is merely link-disjoint), watches for
link failures, and repairs affected primaries by steering their FECs
onto the backups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.control.cspf import CSPFError, cspf_path
from repro.control.lsp import LSP
from repro.control.rsvp_te import (
    RSVPTESignaler,
    SignalingError,
    _note_lsp,
)
from repro.mpls.fec import FEC
from repro.mpls.label import IMPLICIT_NULL, LabelOp
from repro.mpls.nhlfe import NHLFE


@dataclass
class ProtectedPath:
    """One FEC protected by a primary/backup LSP pair."""

    name: str
    fec: FEC
    primary: LSP
    backup: LSP
    active: str = "primary"  # or "backup"

    @property
    def active_lsp(self) -> LSP:
        return self.primary if self.active == "primary" else self.backup


class FastRerouteManager:
    """Path protection over an RSVP-TE signaler."""

    def __init__(self, signaler: RSVPTESignaler) -> None:
        self.signaler = signaler
        self.protected: Dict[str, ProtectedPath] = {}
        self.switchovers = 0
        #: every link failure seen so far (both orientations)
        self.failed_links: Set[Tuple[str, str]] = set()

    # -- setup ---------------------------------------------------------
    def protect(
        self,
        name: str,
        ingress: str,
        egress: str,
        fec: FEC,
        bandwidth_bps: float = 0.0,
    ) -> ProtectedPath:
        """Signal a primary and a disjoint backup; steer ``fec`` onto
        the primary."""
        if name in self.protected:
            raise SignalingError(f"{name!r} is already protected")
        primary = self.signaler.setup(
            f"{name}-primary",
            ingress,
            egress,
            bandwidth_bps=bandwidth_bps,
            fec=fec,
        )
        avoid: Set[str] = set(primary.path[1:-1])
        try:
            backup_route = cspf_path(
                self.signaler.topology,
                ingress,
                egress,
                bandwidth_bps=bandwidth_bps,
                avoid_nodes=avoid,
            )
        except CSPFError:
            # no node-disjoint path: fall back to avoiding the
            # primary's links only (maximally disjoint)
            backup_route = self._link_disjoint_route(
                ingress, egress, primary, bandwidth_bps
            )
        backup = self.signaler.setup(
            f"{name}-backup",
            ingress,
            egress,
            explicit_route=backup_route,
            bandwidth_bps=bandwidth_bps,
        )
        protected = ProtectedPath(
            name=name, fec=fec, primary=primary, backup=backup
        )
        self.protected[name] = protected
        return protected

    def _link_disjoint_route(
        self, ingress: str, egress: str, primary: LSP, bandwidth_bps: float
    ) -> List[str]:
        """Maximally disjoint fallback: penalize the primary's links so
        CSPF only reuses a link when no alternative exists (e.g. a
        single-homed ingress).  A backup identical to the primary means
        there is genuinely nothing to protect with."""
        topo = self.signaler.topology
        saved = []
        for a, b in primary.links():
            attrs = topo.link(a, b)
            saved.append((a, b, attrs.metric))
            attrs.metric = attrs.metric * 1000
        try:
            route = cspf_path(
                topo, ingress, egress, bandwidth_bps=bandwidth_bps
            )
        finally:
            for a, b, metric in saved:
                topo.link(a, b).metric = metric
        if route == primary.path:
            raise SignalingError(
                f"no disjoint backup exists for {primary.name}"
            )
        return route

    # -- failure handling ---------------------------------------------------
    def handle_link_failure(self, a: str, b: str) -> List[str]:
        """Switch every protected FEC whose *active* LSP crosses the
        failed link onto its other LSP.  Returns the repaired names."""
        failed = {(a, b), (b, a)}
        self.failed_links |= failed
        repaired = []
        for protected in self.protected.values():
            if not set(protected.active_lsp.links()) & failed:
                continue
            target = (
                protected.backup
                if protected.active == "primary"
                else protected.primary
            )
            if set(target.links()) & self.failed_links:
                continue  # the other path is (already) dead too
            self._steer(protected, target)
            protected.active = (
                "backup" if protected.active == "primary" else "primary"
            )
            self.switchovers += 1
            repaired.append(protected.name)
            _note_lsp(
                "frr-switchover",
                protected.name,
                detail=f"link {a}-{b} failed; now on {protected.active}",
            )
        return repaired

    def handle_link_recovery(self, a: str, b: str) -> List[str]:
        """A failed link came back: forget it and revert every
        protected FEC that is riding its backup while its primary is
        fully healthy again.  Returns the reverted names."""
        self.failed_links -= {(a, b), (b, a)}
        reverted = []
        for protected in self.protected.values():
            if protected.active != "backup":
                continue
            if set(protected.primary.links()) & self.failed_links:
                continue  # the primary still crosses a dead link
            self.revert(protected.name)
            reverted.append(protected.name)
        return reverted

    def revert(self, name: str) -> None:
        """Switch a protected FEC back onto its primary."""
        protected = self.protected[name]
        if protected.active == "primary":
            return
        self._steer(protected, protected.primary)
        protected.active = "primary"
        _note_lsp("frr-revert", name, detail="back on primary")

    def refresh_ingress(self, name: str) -> int:
        """Re-assert the ingress FTN steer for every protected path
        headed at ``name`` (same active LSP; install clears stale
        marks).  The delegation-fallback / controller-resync
        counterpart to :meth:`RSVPTESignaler.refresh_node`.  Returns
        the number of FTN entries rewritten."""
        writes = 0
        for key in sorted(self.protected):
            protected = self.protected[key]
            if protected.active_lsp.ingress != name:
                continue
            self._steer(protected, protected.active_lsp)
            writes += 1
        return writes

    def _steer(self, protected: ProtectedPath, lsp: LSP) -> None:
        """One FTN rewrite at the ingress: the whole switchover."""
        ingress_node = self.signaler.nodes[lsp.ingress]
        first_label = lsp.hop_labels[0]
        if first_label is None or first_label == IMPLICIT_NULL:
            nhlfe = NHLFE(op=LabelOp.NOOP, next_hop=lsp.path[1])
        else:
            nhlfe = NHLFE(
                op=LabelOp.PUSH,
                out_label=first_label,
                next_hop=lsp.path[1],
            )
        ingress_node.ftn.install(protected.fec, nhlfe)
