"""RSVP-TE-style explicit-route LSP signalling.

One of the two label distribution protocols the paper names for QoS
("label distribution protocols that use MPLS like RSVP-TE and
CR-LDP").  The model captures the protocol's essence:

* a **PATH** message travels the explicit route from head-end to tail,
* a **RESV** message returns, allocating a label at every hop
  (downstream-on-demand) and reserving bandwidth on each link,
* the state is *soft*: it must be refreshed, and :meth:`expire_stale`
  tears down LSPs whose refreshes stopped (the failure-injection path).

Setup installs the same ILM/FTN entries a converged RSVP-TE network
would hold, so the data plane can forward immediately afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.control.cspf import cspf_path
from repro.control.labels import LabelAllocator
from repro.control.lsp import LSP
from repro.mpls.fec import FEC
from repro.mpls.label import IMPLICIT_NULL, LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.router import LSRNode
from repro.net.topology import Topology
from repro.obs.events import LSPEvent
from repro.obs.telemetry import get_telemetry


def _note_lsp(event: str, name: str, detail: str = "") -> None:
    """Telemetry: one LSP lifecycle event (no-op when disabled)."""
    tel = get_telemetry()
    if tel.enabled:
        tel.lsp_events.labels(event).inc()
        tel.events.emit(LSPEvent(name=name, event=event, detail=detail))


class SignalingError(Exception):
    """LSP setup failed (admission control, bad route...)."""


@dataclass
class SignalingStats:
    path_messages: int = 0
    resv_messages: int = 0
    refresh_messages: int = 0
    teardowns: int = 0
    setup_failures: int = 0


class RSVPTESignaler:
    """Head-end signalling over shared node/topology state."""

    def __init__(self, topology: Topology, nodes: Dict[str, LSRNode]) -> None:
        self.topology = topology
        self.nodes = nodes
        self.allocators: Dict[str, LabelAllocator] = {
            name: LabelAllocator(first=100_000) for name in nodes
        }
        self.stats = SignalingStats()
        self.lsps: Dict[str, LSP] = {}
        #: lsp name -> last refresh timestamp
        self._last_refresh: Dict[str, float] = {}

    # -- setup ---------------------------------------------------------
    def setup(
        self,
        name: str,
        ingress: str,
        egress: str,
        explicit_route: Optional[List[str]] = None,
        bandwidth_bps: float = 0.0,
        cos: Optional[int] = None,
        fec: Optional[FEC] = None,
        php: bool = False,
        include_affinity: int = 0,
        exclude_affinity: int = 0,
    ) -> LSP:
        """Signal an LSP; returns it up and installed.

        Without an ``explicit_route``, CSPF computes one honouring the
        bandwidth/affinity constraints.  Admission control rejects the
        setup (and reserves nothing) when any link lacks headroom.
        """
        if name in self.lsps:
            raise SignalingError(f"LSP {name!r} already exists")
        if explicit_route is None:
            try:
                explicit_route = cspf_path(
                    self.topology,
                    ingress,
                    egress,
                    bandwidth_bps=bandwidth_bps,
                    include_affinity=include_affinity,
                    exclude_affinity=exclude_affinity,
                )
            except Exception as exc:
                self.stats.setup_failures += 1
                raise SignalingError(f"CSPF failed for {name!r}: {exc}") from exc
        route = explicit_route
        self._validate_route(route, ingress, egress)

        # PATH downstream: verify hop adjacency and bandwidth headroom.
        for a, b in zip(route, route[1:]):
            self.stats.path_messages += 1
            attrs = self.topology.link(a, b)
            if attrs.reservable(a) + 1e-9 < bandwidth_bps:
                self.stats.setup_failures += 1
                raise SignalingError(
                    f"admission control: link {a}-{b} has only "
                    f"{attrs.reservable(a):g} bps unreserved, "
                    f"{bandwidth_bps:g} requested"
                )

        # RESV upstream: allocate labels, install state, reserve.
        hop_labels: List[Optional[int]] = [None] * (len(route) - 1)
        downstream_label: Optional[int] = IMPLICIT_NULL if php else None
        for i in range(len(route) - 1, 0, -1):
            node_name = route[i]
            self.stats.resv_messages += 1
            if i == len(route) - 1:
                if php:
                    label = IMPLICIT_NULL
                else:
                    label = self.allocators[node_name].allocate()
                    self.nodes[node_name].ilm.install(
                        label, NHLFE(op=LabelOp.POP)
                    )
            else:
                label = self.allocators[node_name].allocate()
                self.nodes[node_name].ilm.install(
                    label,
                    NHLFE(
                        op=LabelOp.SWAP,
                        out_label=downstream_label,
                        next_hop=route[i + 1],
                        cos=cos,
                    ),
                )
            hop_labels[i - 1] = label
            downstream_label = label

        # head-end FTN entry (when a FEC is being steered onto the LSP)
        first_label = hop_labels[0]
        if fec is not None:
            if first_label == IMPLICIT_NULL:
                self.nodes[ingress].ftn.install(
                    fec, NHLFE(op=LabelOp.NOOP, next_hop=route[1])
                )
            else:
                self.nodes[ingress].ftn.install(
                    fec,
                    NHLFE(
                        op=LabelOp.PUSH,
                        out_label=first_label,
                        next_hop=route[1],
                        cos=cos,
                    ),
                )

        # bandwidth reservation along the route
        for a, b in zip(route, route[1:]):
            self.topology.link(a, b).reserve(a, bandwidth_bps)

        lsp = LSP(
            name=name,
            path=list(route),
            hop_labels=hop_labels,
            bandwidth_bps=bandwidth_bps,
            cos=cos,
            protocol="rsvp-te",
        )
        self.lsps[name] = lsp
        self._last_refresh[name] = 0.0
        _note_lsp(
            "setup",
            name,
            detail=f"{'->'.join(route)} @ {bandwidth_bps:g} bps",
        )
        return lsp

    def _validate_route(self, route: List[str], ingress: str, egress: str) -> None:
        if len(route) < 2:
            raise SignalingError("explicit route needs >= 2 nodes")
        if route[0] != ingress or route[-1] != egress:
            raise SignalingError("explicit route must span ingress..egress")
        for a, b in zip(route, route[1:]):
            if not self.topology.has_link(a, b):
                raise SignalingError(f"explicit route uses missing link {a}-{b}")
        if len(set(route)) != len(route):
            raise SignalingError("explicit route revisits a node")

    # -- soft state ------------------------------------------------------
    def refresh(self, name: str, now: float) -> None:
        """Record a refresh for the LSP (one message per hop)."""
        lsp = self.lsps[name]
        self.stats.refresh_messages += lsp.hops
        self._last_refresh[name] = now

    def expire_stale(self, now: float, hold_time: float = 90.0) -> List[str]:
        """Tear down LSPs not refreshed within ``hold_time``."""
        stale = [
            name
            for name, last in self._last_refresh.items()
            if now - last > hold_time
        ]
        for name in stale:
            _note_lsp("expired", name, detail=f"no refresh by t={now:g}")
            self.teardown(name)
        return stale

    # -- teardown ---------------------------------------------------------
    def teardown(self, name: str) -> None:
        lsp = self.lsps.pop(name, None)
        if lsp is None:
            raise KeyError(f"unknown LSP {name!r}")
        self._last_refresh.pop(name, None)
        self.stats.teardowns += 1
        route = lsp.path
        for i in range(1, len(route)):
            node_name = route[i]
            label = lsp.hop_labels[i - 1]
            if label is None or label == IMPLICIT_NULL:
                continue
            if label in self.nodes[node_name].ilm:
                self.nodes[node_name].ilm.remove(label)
            self.allocators[node_name].release(label)
        for a, b in zip(route, route[1:]):
            self.topology.link(a, b).release(a, lsp.bandwidth_bps)
        lsp.up = False
        _note_lsp("teardown", name)
