"""RSVP-TE-style explicit-route LSP signalling.

One of the two label distribution protocols the paper names for QoS
("label distribution protocols that use MPLS like RSVP-TE and
CR-LDP").  The model captures the protocol's essence:

* a **PATH** message travels the explicit route from head-end to tail,
* a **RESV** message returns, allocating a label at every hop
  (downstream-on-demand) and reserving bandwidth on each link,
* the state is *soft*: it must be refreshed, and :meth:`expire_stale`
  tears down LSPs whose refreshes stopped (the failure-injection path).

Setup installs the same ILM/FTN entries a converged RSVP-TE network
would hold, so the data plane can forward immediately afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.control.cspf import CSPFError, cspf_path
from repro.control.labels import LabelAllocator
from repro.control.lsp import LSP
from repro.mpls.fec import FEC
from repro.mpls.label import IMPLICIT_NULL, LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.router import LSRNode
from repro.mpls.transaction import TableTransaction
from repro.net.topology import Topology
from repro.obs.events import LSPEvent, LSPPreempted
from repro.obs.telemetry import get_telemetry


def _note_lsp(event: str, name: str, detail: str = "") -> None:
    """Telemetry: one LSP lifecycle event (no-op when disabled)."""
    tel = get_telemetry()
    if tel.enabled:
        tel.lsp_events.labels(event).inc()
        if tel.flows is not None:
            tel.flows.note_lsp(name, event, detail)
        tel.events.emit(LSPEvent(name=name, event=event, detail=detail))


class SignalingError(Exception):
    """LSP setup failed (admission control, bad route...)."""


class SetupError(SignalingError):
    """Admission control rejected the setup; nothing was reserved.

    Raised *before* any label, table entry, or bandwidth reservation is
    touched, so a caller catching it can retry (e.g. at a stronger
    setup priority) against unchanged network state.
    """


@dataclass
class SignalingStats:
    path_messages: int = 0
    resv_messages: int = 0
    refresh_messages: int = 0
    teardowns: int = 0
    setup_failures: int = 0
    #: victims rerouted make-before-break onto an alternate path
    preempt_reroutes: int = 0
    #: victims torn down because no alternate path existed
    preempt_teardowns: int = 0
    #: setups refused because preemption could not free enough headroom
    preempt_declined: int = 0


class RSVPTESignaler:
    """Head-end signalling over shared node/topology state."""

    def __init__(self, topology: Topology, nodes: Dict[str, LSRNode]) -> None:
        self.topology = topology
        self.nodes = nodes
        self.allocators: Dict[str, LabelAllocator] = {
            name: LabelAllocator(first=100_000) for name in nodes
        }
        self.stats = SignalingStats()
        self.lsps: Dict[str, LSP] = {}
        #: lsp name -> last refresh timestamp
        self._last_refresh: Dict[str, float] = {}
        #: may admission preempt lower-priority LSPs?  (soft preemption:
        #: victims are rerouted make-before-break when a path exists)
        self.preemption_enabled = True
        #: lsp name -> FEC steered onto it (needed to rewrite the
        #: ingress FTN when a preemption reroutes the LSP)
        self._fec_of: Dict[str, FEC] = {}

    # -- setup ---------------------------------------------------------
    def setup(
        self,
        name: str,
        ingress: str,
        egress: str,
        explicit_route: Optional[List[str]] = None,
        bandwidth_bps: float = 0.0,
        cos: Optional[int] = None,
        fec: Optional[FEC] = None,
        php: bool = False,
        include_affinity: int = 0,
        exclude_affinity: int = 0,
        setup_priority: int = 4,
        hold_priority: Optional[int] = None,
    ) -> LSP:
        """Signal an LSP; returns it up and installed.

        Without an ``explicit_route``, CSPF computes one honouring the
        bandwidth/affinity constraints.  Admission control rejects the
        setup (and reserves nothing) when any link lacks headroom --
        unless :attr:`preemption_enabled` and the shortfall links carry
        LSPs whose hold priority is numerically weaker than this
        setup's ``setup_priority``, in which case those victims are
        preempted (rerouted make-before-break when an alternate path
        exists, torn down otherwise) to free the headroom.

        Priorities follow RFC 3209: 0 is strongest, 7 weakest, and
        ``hold_priority`` (defaulting to ``setup_priority``) must hold
        at least as strongly as the LSP requests, i.e. be numerically
        ``<= setup_priority`` -- otherwise two LSPs could preempt each
        other forever.
        """
        if name in self.lsps:
            raise SignalingError(f"LSP {name!r} already exists")
        if hold_priority is None:
            hold_priority = setup_priority
        if not (0 <= setup_priority <= 7 and 0 <= hold_priority <= 7):
            raise SignalingError("priorities must be in 0..7")
        if hold_priority > setup_priority:
            raise SignalingError(
                "hold_priority must be numerically <= setup_priority"
            )
        if explicit_route is None:
            try:
                explicit_route = cspf_path(
                    self.topology,
                    ingress,
                    egress,
                    bandwidth_bps=bandwidth_bps,
                    include_affinity=include_affinity,
                    exclude_affinity=exclude_affinity,
                )
            except Exception as exc:
                self.stats.setup_failures += 1
                raise SignalingError(f"CSPF failed for {name!r}: {exc}") from exc
        route = explicit_route
        self._validate_route(route, ingress, egress)

        # PATH downstream: verify hop adjacency and bandwidth headroom.
        # A shortfall hop is fatal unless preemption can free it; the
        # PATH message stops at the first hopeless hop, exactly as the
        # non-preempting admission check always has.
        shortfalls: List[Tuple[str, str]] = []
        for a, b in zip(route, route[1:]):
            self.stats.path_messages += 1
            attrs = self.topology.link(a, b)
            if attrs.reservable(a) + 1e-9 < bandwidth_bps:
                if not (
                    self.preemption_enabled
                    and self._candidates_on(a, b, setup_priority, name)
                ):
                    self.stats.setup_failures += 1
                    raise SetupError(
                        f"admission control: link {a}-{b} has only "
                        f"{attrs.reservable(a):g} bps unreserved, "
                        f"{bandwidth_bps:g} requested"
                    )
                shortfalls.append((a, b))

        if shortfalls:
            # plan first (pure), execute only if the whole plan works:
            # a declined preemption must leave zero partial state
            plan = self._plan_preemption(
                shortfalls, bandwidth_bps, setup_priority, name
            )
            if plan is None:
                self.stats.setup_failures += 1
                self.stats.preempt_declined += 1
                raise SetupError(
                    f"admission control: preemption at priority "
                    f"{setup_priority} cannot free {bandwidth_bps:g} bps "
                    f"for {name!r}"
                )
            avoid = {(a, b) if a <= b else (b, a) for a, b in shortfalls}
            for victim in plan:
                self._preempt(victim, avoid, by=name)
            for a, b in shortfalls:
                attrs = self.topology.link(a, b)
                if attrs.reservable(a) + 1e-9 < bandwidth_bps:
                    # the plan accounted for this; defensive only
                    self.stats.setup_failures += 1
                    raise SignalingError(
                        f"preemption under-freed link {a}-{b} for {name!r}"
                    )

        # RESV upstream: allocate labels, install state, reserve.
        hop_labels = self._install_route(route, cos=cos, fec=fec, php=php)

        # bandwidth reservation along the route
        for a, b in zip(route, route[1:]):
            self.topology.link(a, b).reserve(a, bandwidth_bps)

        lsp = LSP(
            name=name,
            path=list(route),
            hop_labels=hop_labels,
            bandwidth_bps=bandwidth_bps,
            cos=cos,
            protocol="rsvp-te",
            setup_priority=setup_priority,
            hold_priority=hold_priority,
        )
        self.lsps[name] = lsp
        self._last_refresh[name] = 0.0
        if fec is not None:
            self._fec_of[name] = fec
        _note_lsp(
            "setup",
            name,
            detail=f"{'->'.join(route)} @ {bandwidth_bps:g} bps",
        )
        return lsp

    def _install_route(
        self,
        route: List[str],
        cos: Optional[int],
        fec: Optional[FEC],
        php: bool,
    ) -> List[Optional[int]]:
        """RESV upstream: allocate labels, install ILM (and the ingress
        FTN when a FEC is steered).  Returns the hop labels."""
        hop_labels: List[Optional[int]] = [None] * (len(route) - 1)
        downstream_label: Optional[int] = IMPLICIT_NULL if php else None
        for i in range(len(route) - 1, 0, -1):
            node_name = route[i]
            self.stats.resv_messages += 1
            if i == len(route) - 1:
                if php:
                    label = IMPLICIT_NULL
                else:
                    label = self.allocators[node_name].allocate()
                    self.nodes[node_name].ilm.install(
                        label, NHLFE(op=LabelOp.POP)
                    )
            else:
                label = self.allocators[node_name].allocate()
                self.nodes[node_name].ilm.install(
                    label,
                    NHLFE(
                        op=LabelOp.SWAP,
                        out_label=downstream_label,
                        next_hop=route[i + 1],
                        cos=cos,
                    ),
                )
            hop_labels[i - 1] = label
            downstream_label = label

        # head-end FTN entry (when a FEC is being steered onto the LSP)
        first_label = hop_labels[0]
        if fec is not None:
            if first_label == IMPLICIT_NULL:
                self.nodes[route[0]].ftn.install(
                    fec, NHLFE(op=LabelOp.NOOP, next_hop=route[1])
                )
            else:
                self.nodes[route[0]].ftn.install(
                    fec,
                    NHLFE(
                        op=LabelOp.PUSH,
                        out_label=first_label,
                        next_hop=route[1],
                        cos=cos,
                    ),
                )
        return hop_labels

    # -- preemption -------------------------------------------------------
    def _candidates_on(
        self, a: str, b: str, setup_priority: int, exclude: str
    ) -> List[LSP]:
        """Established LSPs on directed link ``a -> b`` preemptable by a
        setup at ``setup_priority``: weakest hold first, then biggest
        reservation (fewest victims), then name (determinism)."""
        victims = [
            lsp
            for lsp in self.lsps.values()
            if lsp.name != exclude
            and lsp.hold_priority > setup_priority
            and lsp.bandwidth_bps > 0.0
            and (a, b) in lsp.links()
        ]
        victims.sort(
            key=lambda lsp: (-lsp.hold_priority, -lsp.bandwidth_bps, lsp.name)
        )
        return victims

    def _plan_preemption(
        self,
        shortfalls: List[Tuple[str, str]],
        bandwidth_bps: float,
        setup_priority: int,
        name: str,
    ) -> Optional[List[LSP]]:
        """Pick victims freeing every shortfall link, mutating nothing.

        Returns None when even preempting every eligible victim leaves
        some link short -- the declined path, taken before any state
        has been touched.
        """
        chosen: List[LSP] = []
        chosen_names: set = set()
        for a, b in shortfalls:
            attrs = self.topology.link(a, b)
            freed = sum(
                v.bandwidth_bps for v in chosen if (a, b) in v.links()
            )
            need = bandwidth_bps - attrs.reservable(a) - freed
            if need <= 1e-9:
                continue
            for victim in self._candidates_on(a, b, setup_priority, name):
                if victim.name in chosen_names:
                    continue
                chosen.append(victim)
                chosen_names.add(victim.name)
                need -= victim.bandwidth_bps
                if need <= 1e-9:
                    break
            if need > 1e-9:
                return None
        return chosen

    def _preempt(
        self, victim: LSP, avoid_links: set, by: str
    ) -> None:
        """Soft-preempt ``victim``: reroute it make-before-break off the
        ``avoid_links``, or tear it down when no alternate path exists.
        Its old reservations are released either way."""
        for a, b in victim.links():
            self.topology.link(a, b).release(a, victim.bandwidth_bps)
        try:
            new_route = cspf_path(
                self.topology,
                victim.ingress,
                victim.egress,
                bandwidth_bps=victim.bandwidth_bps,
                avoid_links=avoid_links,
            )
        except CSPFError:
            new_route = None
        if new_route is None:
            # hard preemption: no alternate path, the victim goes down
            self._remove_forwarding(victim)
            self.lsps.pop(victim.name, None)
            self._last_refresh.pop(victim.name, None)
            self._fec_of.pop(victim.name, None)
            victim.up = False
            self.stats.preempt_teardowns += 1
            self._note_preempt(
                victim.name, by, "teardown", "no alternate route"
            )
            return
        php = victim.hop_labels[-1] == IMPLICIT_NULL
        fec = self._fec_of.get(victim.name)
        old_path = list(victim.path)
        old_labels = list(victim.hop_labels)
        # make-before-break, atomically: the new path's state and the
        # old path's removal land in one shadow-bank transaction, so
        # the data plane never observes a half-moved LSP
        tables = [
            self.nodes[node_name].ilm
            for node_name in sorted(set(old_path) | set(new_route))
        ]
        if fec is not None:
            tables.append(self.nodes[victim.ingress].ftn)
        for _ in zip(new_route, new_route[1:]):
            self.stats.path_messages += 1
        with TableTransaction(tables):
            new_labels = self._install_route(
                new_route, cos=victim.cos, fec=fec, php=php
            )
            for i in range(1, len(old_path)):
                label = old_labels[i - 1]
                node_name = old_path[i]
                if label is None or label == IMPLICIT_NULL:
                    continue
                if label in self.nodes[node_name].ilm:
                    self.nodes[node_name].ilm.remove(label)
                self.allocators[node_name].release(label)
        for a, b in zip(new_route, new_route[1:]):
            self.topology.link(a, b).reserve(a, victim.bandwidth_bps)
        victim.path = list(new_route)
        victim.hop_labels = new_labels
        self.stats.preempt_reroutes += 1
        self._note_preempt(victim.name, by, "reroute", "->".join(new_route))

    def _remove_forwarding(self, lsp: LSP) -> None:
        """Remove an LSP's ILM entries (and ingress FTN) and free its
        labels; reservations are the caller's business."""
        route = lsp.path
        for i in range(1, len(route)):
            node_name = route[i]
            label = lsp.hop_labels[i - 1]
            if label is None or label == IMPLICIT_NULL:
                continue
            if label in self.nodes[node_name].ilm:
                self.nodes[node_name].ilm.remove(label)
            self.allocators[node_name].release(label)
        fec = self._fec_of.get(lsp.name)
        if fec is not None:
            try:
                self.nodes[lsp.ingress].ftn.remove(fec)
            except KeyError:
                pass

    def _note_preempt(
        self, name: str, by: str, mode: str, detail: str = ""
    ) -> None:
        tel = get_telemetry()
        if tel.enabled:
            tel.lsp_preemptions.labels(mode).inc()
            tel.events.emit(
                LSPPreempted(name=name, by=by, mode=mode, detail=detail)
            )
        _note_lsp(f"preempt-{mode}", name, detail=detail)

    def _validate_route(self, route: List[str], ingress: str, egress: str) -> None:
        if len(route) < 2:
            raise SignalingError("explicit route needs >= 2 nodes")
        if route[0] != ingress or route[-1] != egress:
            raise SignalingError("explicit route must span ingress..egress")
        for a, b in zip(route, route[1:]):
            if not self.topology.has_link(a, b):
                raise SignalingError(f"explicit route uses missing link {a}-{b}")
        if len(set(route)) != len(route):
            raise SignalingError("explicit route revisits a node")

    # -- soft state ------------------------------------------------------
    def refresh(self, name: str, now: float) -> None:
        """Record a refresh for the LSP (one message per hop)."""
        lsp = self.lsps[name]
        self.stats.refresh_messages += lsp.hops
        self._last_refresh[name] = now

    def refresh_node(self, name: str) -> int:
        """Rewrite one node's ILM entries in place from the signalled
        LSP state -- same labels, same next hops, no RESV traffic.

        The delegation-fallback / controller-resync primitive (install
        clears RFC 3478 stale marks).  The ingress FTN is the FRR
        manager's to refresh (:meth:`FastRerouteManager.refresh_ingress`)
        since protection decides which LSP the FEC rides.  Returns the
        number of entries rewritten.
        """
        writes = 0
        for lsp_name in sorted(self.lsps):
            lsp = self.lsps[lsp_name]
            route = lsp.path
            for i in range(1, len(route)):
                if route[i] != name:
                    continue
                label = lsp.hop_labels[i - 1]
                if label is None or label == IMPLICIT_NULL:
                    continue
                if i == len(route) - 1:
                    self.nodes[name].ilm.install(
                        label, NHLFE(op=LabelOp.POP)
                    )
                else:
                    self.nodes[name].ilm.install(
                        label,
                        NHLFE(
                            op=LabelOp.SWAP,
                            out_label=lsp.hop_labels[i],
                            next_hop=route[i + 1],
                            cos=lsp.cos,
                        ),
                    )
                writes += 1
        return writes

    def expire_stale(self, now: float, hold_time: float = 90.0) -> List[str]:
        """Tear down LSPs not refreshed within ``hold_time``."""
        stale = [
            name
            for name, last in self._last_refresh.items()
            if now - last > hold_time
        ]
        for name in stale:
            _note_lsp("expired", name, detail=f"no refresh by t={now:g}")
            self.teardown(name)
        return stale

    # -- teardown ---------------------------------------------------------
    def teardown(self, name: str) -> None:
        lsp = self.lsps.pop(name, None)
        if lsp is None:
            raise KeyError(f"unknown LSP {name!r}")
        self._last_refresh.pop(name, None)
        fec = self._fec_of.pop(name, None)
        if fec is not None:
            tel = get_telemetry()
            if tel.enabled and tel.flows is not None:
                # finish the flow records riding the torn-down FEC
                tel.flows.close_fec(str(getattr(fec, "prefix", fec)))
        self.stats.teardowns += 1
        route = lsp.path
        for i in range(1, len(route)):
            node_name = route[i]
            label = lsp.hop_labels[i - 1]
            if label is None or label == IMPLICIT_NULL:
                continue
            if label in self.nodes[node_name].ilm:
                self.nodes[node_name].ilm.remove(label)
            self.allocators[node_name].release(label)
        for a, b in zip(route, route[1:]):
            self.topology.link(a, b).release(a, lsp.bandwidth_bps)
        lsp.up = False
        _note_lsp("teardown", name)
