"""A fast functional model of the label stack modifier.

Implements exactly the same transaction semantics as the RTL
(:mod:`repro.hw.modifier` driven by :mod:`repro.hw.driver`) with cycle
counts computed from the Table 6 formulas instead of simulated clock
edges.  Two uses:

* as the *golden reference* the RTL is checked against on randomized
  operation sequences (``tests/hw/test_rtl_vs_model.py``), and
* as the per-packet hardware cost model inside network-scale
  simulations (:mod:`repro.core.architecture`), where stepping the RTL
  for every packet would dominate the run time without changing any
  result -- the equivalence tests are what justify the substitution.

The model mirrors the hardware's quirks deliberately: linear search
with first-match-wins, discard-clears-the-stack, level-1 keys that are
either packet identifiers (ingress) or zero-extended labels (depth-1
lookups), and the LER/LSR consistency checks of VERIFY_INFO.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.hw.opcodes import (
    MgmtResult,
    ReadEntryResult,
    SearchResult,
    UpdateResult,
)
from repro.mpls.label import LabelEntry, LabelOp

#: Table 6 constants.
RESET_CYCLES = 3
USER_PUSH_CYCLES = 3
USER_POP_CYCLES = 3
WRITE_PAIR_CYCLES = 3

#: The double-buffered information base commits a whole staged bank by
#: flipping the active-bank select -- one clock edge, regardless of how
#: many pairs the bank holds.
BANK_SWAP_CYCLES = 1

#: Fixed overhead of a search (the +5 of "3n + 5").
SEARCH_OVERHEAD = 5
#: Cycles per examined entry.
SEARCH_PER_ENTRY = 3
#: A hit at 0-based entry ``k`` costs ``3k + 8``; an exhaustive miss
#: over ``n`` entries costs ``3n + 5`` (the two agree at k = n-1).
SEARCH_HIT_BASE = 8

#: Post-search costs of the update flow (GET_RESULT through DONE).
SWAP_TAIL_CYCLES = 6
POP_TAIL_CYCLES = 6
PUSH_TAIL_CYCLES = 7        # visits PUSH_OLD as well
INGRESS_PUSH_TAIL_CYCLES = 6
MISS_TAIL_CYCLES = 2        # GET_RESULT + DISCARD
VERIFY_FAIL_TAIL_CYCLES = 5  # GET_RESULT..VERIFY_INFO + DISCARD

#: Management extension costs beyond the search (measured on the RTL,
#: asserted equal in the equivalence tests).
MODIFY_TAIL_CYCLES = 2
REMOVE_TAIL_CYCLES = 4
MGMT_MISS_TAIL_CYCLES = 1
READ_ENTRY_CYCLES = 5

#: Architecture limits.
MAX_LEVELS = 3


def search_cycles(n_entries: int, hit_position: Optional[int]) -> int:
    """The Table 6 search cost for a level holding ``n_entries``.

    ``hit_position`` is the 0-based index of the matching pair, or
    ``None`` for a miss (exhaustive scan).
    """
    if hit_position is None:
        return SEARCH_PER_ENTRY * n_entries + SEARCH_OVERHEAD
    return SEARCH_PER_ENTRY * hit_position + SEARCH_HIT_BASE


@dataclass
class _Level:
    pairs: List[Tuple[int, int, int]] = field(default_factory=list)
    overflow: bool = False


@dataclass
class ScrubReport:
    """Outcome of one information-base scrub (see :func:`scrub_level`)."""

    level: int
    checked: int = 0
    corrupted: int = 0
    repaired: int = 0
    passes: int = 0
    cycles: int = 0
    clean: bool = True


def _normalize_pairs(
    level: int, pairs: Iterable[Tuple[int, int, object]]
) -> List[Tuple[int, int, int]]:
    mask = 0xFFFFFFFF if level == 1 else 0xFFFFF
    return [
        (index & mask, label & 0xFFFFF, int(op))
        for index, label, op in pairs
    ]


def scrub_level(
    device,
    level: int,
    expected: Iterable[Tuple[int, int, object]],
    repair: bool = True,
    max_passes: int = 3,
) -> ScrubReport:
    """Walk one information-base level and repair corrupted pairs.

    The software side of the VERIFY_INFO idea: the control plane knows
    every (index, label, operation) triple it programmed, so a scrub
    reads each occupied address back through the management port
    (READ_ENTRY), diffs against that shadow, and repairs divergence in
    place -- MODIFY_PAIR when only the label/operation flipped,
    REMOVE_PAIR + WRITE_PAIR when the index itself was hit.  Every
    transaction's cycles are accounted, so the repair cost is
    comparable against a full reprogram.

    ``device`` is anything speaking the driver transaction protocol
    (:class:`FunctionalModifier` or
    :class:`~repro.hw.driver.ModifierDriver`).  A repair that needs
    more than ``max_passes`` detection/repair rounds (possible when a
    corrupted index collides with a healthy entry) reports
    ``clean=False``.
    """
    if level not in (1, 2, 3):
        raise ValueError(f"level must be 1..3, got {level}")
    want = Counter(_normalize_pairs(level, expected))
    report = ScrubReport(level=level)
    for _ in range(max_passes):
        report.passes += 1
        count = device.ib_counts()[level - 1]
        stored: List[Tuple[int, int, int]] = []
        for address in range(count):
            entry = device.read_entry(level, address)
            report.cycles += entry.cycles
            if entry.valid:
                stored.append((entry.index, entry.label, int(entry.op)))
        report.checked += len(stored)
        have = Counter(stored)
        bad = list((have - want).elements())
        missing = list((want - have).elements())
        if not bad and not missing:
            report.clean = True
            return report
        report.corrupted += len(bad)
        if not repair:
            report.clean = False
            return report
        for entry in bad:
            match = next(
                (m for m in missing if m[0] == entry[0]), None
            )
            if match is not None:
                # same key, flipped payload: rewrite in place
                result = device.modify_pair(
                    level, match[0], match[1], LabelOp(match[2])
                )
                report.cycles += result.cycles
                if result.found:
                    report.repaired += 1
                missing.remove(match)
            else:
                # the index itself flipped: drop the orphan pair
                result = device.remove_pair(level, entry[0])
                report.cycles += result.cycles
                if result.found:
                    report.repaired += 1
        for index, label, op in missing:
            report.cycles += device.write_pair(
                level, index, label, LabelOp(op)
            )
    # out of passes: one final verification read
    count = device.ib_counts()[level - 1]
    final: List[Tuple[int, int, int]] = []
    for address in range(count):
        entry = device.read_entry(level, address)
        report.cycles += entry.cycles
        if entry.valid:
            final.append((entry.index, entry.label, int(entry.op)))
    report.clean = Counter(final) == want
    return report


class StagingBackpressure(RuntimeError):
    """The bounded bank-write command queue is full.

    The write port drains staged pairs into the shadow bank at a fixed
    rate; when the control plane issues writes faster than the queue
    bound (``staging_limit``) allows, the next write raises instead of
    growing an unbounded staging list.  The caller must yield --
    :meth:`FunctionalModifier.bank_drain` models waiting for the queue
    to empty -- and retry the write.
    """


class FunctionalModifier:
    """Drop-in functional equivalent of
    :class:`~repro.hw.driver.ModifierDriver`."""

    def __init__(
        self,
        ib_depth: int = 1024,
        stack_capacity: int = 8,
        staging_limit: Optional[int] = None,
    ) -> None:
        self.ib_depth = ib_depth
        self.stack_capacity = stack_capacity
        if staging_limit is not None and staging_limit < 1:
            raise ValueError("staging_limit must be >= 1")
        #: bound on bank writes in flight between drains (None = legacy
        #: unbounded staging)
        self.staging_limit = staging_limit
        self._staged_since_drain = 0
        self._levels = [_Level(), _Level(), _Level()]
        #: shadow banks while a bank transaction is open, else None
        self._staged_levels: Optional[List[_Level]] = None
        self._stack: List[LabelEntry] = []  # index 0 is the top
        self._is_lsr = False
        self.stack_error = False
        self.total_cycles = 0
        #: bumped whenever the *active* information base changes shape
        #: (writes, bank flips, management ops, corruption, reset);
        #: batched nodes key memoized search results on this, since pair
        #: positions -- and therefore search cycle counts -- depend on it
        self.state_version = 0

    # -- configuration ------------------------------------------------------
    def set_router_type(self, is_lsr: bool) -> None:
        self._is_lsr = is_lsr

    # -- transactions ------------------------------------------------------
    def reset(self) -> int:
        self._levels = [_Level(), _Level(), _Level()]
        self._stack = []
        self._is_lsr = False
        self.stack_error = False
        self.state_version += 1
        self.total_cycles += RESET_CYCLES
        return RESET_CYCLES

    def user_push(self, entry: LabelEntry) -> int:
        if len(self._stack) >= self.stack_capacity:
            self.stack_error = True
        else:
            self._stack.insert(0, entry)
        self.total_cycles += USER_PUSH_CYCLES
        return USER_PUSH_CYCLES

    def user_pop(self) -> Tuple[Optional[LabelEntry], int]:
        popped = None
        if self._stack:
            popped = self._stack.pop(0)
        else:
            self.stack_error = True
        self.total_cycles += USER_POP_CYCLES
        return popped, USER_POP_CYCLES

    def write_pair(
        self, level: int, index: int, new_label: int, op: LabelOp
    ) -> int:
        if level not in (1, 2, 3):
            raise ValueError(f"level must be 1..3, got {level}")
        lvl = self._levels[level - 1]
        if len(lvl.pairs) >= self.ib_depth:
            lvl.overflow = True
        else:
            mask = 0xFFFFFFFF if level == 1 else 0xFFFFF
            lvl.pairs.append((index & mask, new_label & 0xFFFFF, int(op)))
            self.state_version += 1
        self.total_cycles += WRITE_PAIR_CYCLES
        return WRITE_PAIR_CYCLES

    # -- double-buffered bank programming ------------------------------------
    @property
    def in_bank_transaction(self) -> bool:
        return self._staged_levels is not None

    def bank_begin(self) -> None:
        """Open the shadow banks: subsequent :meth:`bank_write_pair`
        calls assemble a fresh information base off to the side while
        searches and updates keep hitting the active banks."""
        if self._staged_levels is not None:
            raise RuntimeError("bank transaction already open")
        self._staged_levels = [_Level(), _Level(), _Level()]
        self._staged_since_drain = 0

    def bank_write_pair(
        self, level: int, index: int, new_label: int, op: LabelOp
    ) -> int:
        """Append a pair to the *shadow* bank (same 3-cycle write port
        as :meth:`write_pair`, but invisible to the data path until
        :meth:`bank_commit`)."""
        if self._staged_levels is None:
            raise RuntimeError("no bank transaction open")
        if level not in (1, 2, 3):
            raise ValueError(f"level must be 1..3, got {level}")
        if (
            self.staging_limit is not None
            and self._staged_since_drain >= self.staging_limit
        ):
            raise StagingBackpressure(
                f"bank command queue full ({self.staging_limit} writes "
                f"since last drain)"
            )
        self._staged_since_drain += 1
        lvl = self._staged_levels[level - 1]
        if len(lvl.pairs) >= self.ib_depth:
            lvl.overflow = True
        else:
            mask = 0xFFFFFFFF if level == 1 else 0xFFFFF
            lvl.pairs.append((index & mask, new_label & 0xFFFFF, int(op)))
        self.total_cycles += WRITE_PAIR_CYCLES
        return WRITE_PAIR_CYCLES

    def bank_commit(self) -> int:
        """Flip the bank select: the shadow banks become active in a
        single cycle.  No search ever observes a half-written table."""
        if self._staged_levels is None:
            raise RuntimeError("no bank transaction open")
        for old, new in zip(self._levels, self._staged_levels):
            new.overflow = new.overflow or old.overflow
        self._levels = self._staged_levels
        self._staged_levels = None
        self._staged_since_drain = 0
        self.state_version += 1
        self.total_cycles += BANK_SWAP_CYCLES
        return BANK_SWAP_CYCLES

    def bank_drain(self) -> int:
        """Wait for the bounded bank-write command queue to empty.

        Zero extra cycles: each pair's 3-cycle write already covers its
        drain into the shadow-bank RAM; this only re-opens the queue.
        Returns how many writes were outstanding."""
        if self._staged_levels is None:
            raise RuntimeError("no bank transaction open")
        drained = self._staged_since_drain
        self._staged_since_drain = 0
        return drained

    def bank_rollback(self) -> None:
        """Abandon the shadow banks (zero cycles: nothing was ever
        visible to the data path)."""
        if self._staged_levels is None:
            raise RuntimeError("no bank transaction open")
        self._staged_levels = None
        self._staged_since_drain = 0

    def _scan(self, level: int, key: int):
        """Linear first-match scan; returns (position, label, op) or
        (None, None, None)."""
        for pos, (index, label, op) in enumerate(self._levels[level - 1].pairs):
            if index == key:
                return pos, label, op
        return None, None, None

    def search(self, level: int, key: int) -> SearchResult:
        if level not in (1, 2, 3):
            raise ValueError(f"level must be 1..3, got {level}")
        n = len(self._levels[level - 1].pairs)
        pos, label, op = self._scan(level, key)
        cycles = search_cycles(n, pos)
        self.total_cycles += cycles
        if pos is None:
            return SearchResult(
                found=False, label=None, op=None, discarded=True, cycles=cycles
            )
        return SearchResult(
            found=True,
            label=label,
            op=LabelOp(op),
            discarded=False,
            cycles=cycles,
        )

    # -- information-base management ---------------------------------------
    def modify_pair(
        self, level: int, index: int, new_label: int, op: LabelOp
    ) -> MgmtResult:
        """Rewrite an existing pair in place (search + 2 cycles)."""
        if level not in (1, 2, 3):
            raise ValueError(f"level must be 1..3, got {level}")
        lvl = self._levels[level - 1]
        mask = 0xFFFFFFFF if level == 1 else 0xFFFFF
        n = len(lvl.pairs)
        pos, _, _ = self._scan(level, index & mask)
        if pos is None:
            cycles = search_cycles(n, None) + MGMT_MISS_TAIL_CYCLES
            self.total_cycles += cycles
            return MgmtResult(found=False, cycles=cycles)
        lvl.pairs[pos] = (index & mask, new_label & 0xFFFFF, int(op))
        self.state_version += 1
        cycles = search_cycles(n, pos) + MODIFY_TAIL_CYCLES
        self.total_cycles += cycles
        return MgmtResult(found=True, cycles=cycles)

    def remove_pair(self, level: int, index: int) -> MgmtResult:
        """Delete a pair; the last stored pair fills the hole (search
        + 4 cycles)."""
        if level not in (1, 2, 3):
            raise ValueError(f"level must be 1..3, got {level}")
        lvl = self._levels[level - 1]
        mask = 0xFFFFFFFF if level == 1 else 0xFFFFF
        n = len(lvl.pairs)
        pos, _, _ = self._scan(level, index & mask)
        if pos is None:
            cycles = search_cycles(n, None) + MGMT_MISS_TAIL_CYCLES
            self.total_cycles += cycles
            return MgmtResult(found=False, cycles=cycles)
        lvl.pairs[pos] = lvl.pairs[-1]
        lvl.pairs.pop()
        self.state_version += 1
        cycles = search_cycles(n, pos) + REMOVE_TAIL_CYCLES
        self.total_cycles += cycles
        return MgmtResult(found=True, cycles=cycles)

    def read_entry(self, level: int, address: int) -> ReadEntryResult:
        """Direct read of the pair at ``address`` (5 fixed cycles)."""
        if level not in (1, 2, 3):
            raise ValueError(f"level must be 1..3, got {level}")
        if address < 0:
            raise ValueError(f"negative address {address}")
        # the RTL clamps the presented address to the memory depth
        address = min(address & 0x7FF, self.ib_depth - 1)
        lvl = self._levels[level - 1]
        self.total_cycles += READ_ENTRY_CYCLES
        if address >= len(lvl.pairs):
            return ReadEntryResult(
                valid=False, index=None, label=None, op=None,
                cycles=READ_ENTRY_CYCLES,
            )
        index, label, op = lvl.pairs[address]
        return ReadEntryResult(
            valid=True,
            index=index,
            label=label,
            op=LabelOp(op),
            cycles=READ_ENTRY_CYCLES,
        )

    def update(
        self, packet_id: int = 0, ttl: int = 64, cos: int = 0
    ) -> UpdateResult:
        was_empty = not self._stack
        if was_empty:
            level, key = 1, packet_id
            old_ttl, old_cos = ttl, cos
        else:
            top = self._stack[0]
            level = min(len(self._stack), MAX_LEVELS)
            key = top.label
            old_ttl, old_cos = top.ttl, top.cos
        n = len(self._levels[level - 1].pairs)
        pos, label, op_code = self._scan(level, key)

        if pos is None:
            searched = search_cycles(n, None)
            cycles = searched + MISS_TAIL_CYCLES
            self._stack = []
            self.total_cycles += cycles
            return UpdateResult(
                performed=None,
                discarded=True,
                cycles=cycles,
                stack=(),
                search_cycles=searched,
            )

        base = search_cycles(n, pos)
        op = LabelOp(op_code)
        new_ttl = (old_ttl - 1) & 0xFF

        def fail() -> UpdateResult:
            cycles = base + VERIFY_FAIL_TAIL_CYCLES
            self._stack = []
            self.total_cycles += cycles
            return UpdateResult(
                performed=None,
                discarded=True,
                cycles=cycles,
                stack=(),
                search_cycles=base,
            )

        # VERIFY_INFO checks, in the same order as the RTL
        if old_ttl <= 1:
            return fail()
        if op is LabelOp.NOOP:
            return fail()
        if was_empty and op is not LabelOp.PUSH:
            return fail()
        if was_empty and self._is_lsr:
            return fail()
        if op is LabelOp.PUSH and len(self._stack) >= MAX_LEVELS:
            return fail()

        if op is LabelOp.SWAP:
            old = self._stack.pop(0)
            # like PUSH_NEW in the RTL, the S bit is recomputed from
            # the stack occupancy rather than copied from the old entry
            s_bit = 1 if not self._stack else 0
            self._stack.insert(
                0, LabelEntry(label=label, cos=old.cos, s=s_bit, ttl=new_ttl)
            )
            cycles = base + SWAP_TAIL_CYCLES
        elif op is LabelOp.POP:
            self._stack.pop(0)
            if self._stack:
                exposed = self._stack[0]
                self._stack[0] = LabelEntry(
                    label=exposed.label,
                    cos=exposed.cos,
                    s=exposed.s,
                    ttl=new_ttl,
                )
            cycles = base + POP_TAIL_CYCLES
        else:  # PUSH
            if was_empty:
                self._stack.insert(
                    0, LabelEntry(label=label, cos=old_cos, s=1, ttl=new_ttl)
                )
                cycles = base + INGRESS_PUSH_TAIL_CYCLES
            else:
                old = self._stack.pop(0)
                self._stack.insert(
                    0,
                    LabelEntry(label=old.label, cos=old.cos, s=old.s, ttl=new_ttl),
                )
                self._stack.insert(
                    0, LabelEntry(label=label, cos=old.cos, s=0, ttl=new_ttl)
                )
                cycles = base + PUSH_TAIL_CYCLES
        self.total_cycles += cycles
        return UpdateResult(
            performed=op,
            discarded=False,
            cycles=cycles,
            stack=tuple(self._stack),
            search_cycles=base,
        )

    # -- fault injection ----------------------------------------------------
    def corrupt_pair(
        self,
        level: int,
        address: int,
        index_xor: int = 0,
        label_xor: int = 0,
        op_xor: int = 0,
    ) -> bool:
        """Flip bits in the stored pair at ``address`` (a soft-error /
        SEU model, not a hardware transaction: zero cycles).  Returns
        False when the address holds no pair."""
        if level not in (1, 2, 3):
            raise ValueError(f"level must be 1..3, got {level}")
        lvl = self._levels[level - 1]
        if not 0 <= address < len(lvl.pairs):
            return False
        index, label, op = lvl.pairs[address]
        mask = 0xFFFFFFFF if level == 1 else 0xFFFFF
        lvl.pairs[address] = (
            (index ^ index_xor) & mask,
            (label ^ label_xor) & 0xFFFFF,
            (op ^ op_xor) & 0x3,
        )
        self.state_version += 1
        return True

    def scrub(
        self,
        level: int,
        expected: Iterable[Tuple[int, int, object]],
        repair: bool = True,
    ) -> ScrubReport:
        """Verify (and repair) one level against the control plane's
        shadow of what it programmed; see :func:`scrub_level`."""
        return scrub_level(self, level, expected, repair=repair)

    # -- inspection ---------------------------------------------------------
    def stack(self) -> List[LabelEntry]:
        return list(self._stack)

    def ib_counts(self) -> Tuple[int, int, int]:
        return tuple(len(lvl.pairs) for lvl in self._levels)  # type: ignore[return-value]

    def ib_pairs(self, level: int) -> List[Tuple[int, int, int]]:
        """The stored (index, label, op) triples of one level."""
        if level not in (1, 2, 3):
            raise ValueError(f"level must be 1..3, got {level}")
        return list(self._levels[level - 1].pairs)
