"""The hardware label stack of the datapath (Figure 12, "STACK").

A small register-file stack of 32-bit label entries with a size
counter.  All mutations are synchronous: the control unit presents a
:class:`~repro.hw.opcodes.StackOp` and a data word during a cycle, and
the stack commits at the clock edge.  ``top`` and ``size`` are
registered outputs ("Number of stack items" / "Label from stack" in the
paper's datapath figure), so they reflect pre-edge state during any
cycle -- exactly the timing the label-stack interface FSM relies on.

Misuse (pop of an empty stack, push of a full one) does not corrupt
state: the operation is dropped and a sticky ``error`` flag raised,
which is what a defensively designed hardware block would do and what
the failure-injection tests assert.
"""

from __future__ import annotations

from typing import List

from repro.hdl.simulator import Component, Simulator
from repro.hw.opcodes import StackOp

#: Stack entry width: one RFC 3032 label stack entry.
ENTRY_WIDTH = 32


class HardwareStack(Component):
    """A ``capacity``-deep stack of 32-bit entries.

    Wires (inputs): ``op`` (3 bits, a :class:`StackOp` code),
    ``data_in`` (32 bits, for PUSH and WRITE_TOP).

    Registers (outputs): ``top`` (the current top entry, 0 when empty),
    ``size``, ``error`` (sticky misuse flag).
    """

    def __init__(self, sim: Simulator, name: str, capacity: int = 8) -> None:
        super().__init__(sim, name)
        if capacity < 1:
            raise ValueError(f"{name}: capacity must be >= 1")
        self.capacity = capacity
        self.op = self.wire("op", 3)
        self.data_in = self.wire("data_in", ENTRY_WIDTH)
        self.top = self.reg("top", ENTRY_WIDTH)
        self.size = self.reg("size", max(1, capacity.bit_length()))
        self.error = self.reg("error", 1)
        self._entries: List[int] = []  # index -1 is the top

    def tick(self) -> None:
        op = self.op.value
        if op == StackOp.PUSH:
            if len(self._entries) >= self.capacity:
                self.error.stage(1)
            else:
                self._entries.append(self.data_in.value)
        elif op == StackOp.POP:
            if not self._entries:
                self.error.stage(1)
            else:
                self._entries.pop()
        elif op == StackOp.CLEAR:
            self._entries.clear()
        elif op == StackOp.WRITE_TOP:
            if not self._entries:
                self.error.stage(1)
            else:
                self._entries[-1] = self.data_in.value
        elif op != StackOp.HOLD:
            raise ValueError(f"{self.name}: unknown stack op {op}")
        self.top.stage(self._entries[-1] if self._entries else 0)
        self.top.commit()
        self.size.stage(len(self._entries))
        self.size.commit()
        self.error.commit()

    def reset(self) -> None:
        self._entries.clear()

    # -- test/debug backdoor ------------------------------------------------
    def entries_top_first(self) -> List[int]:
        """Entries as a list, top of stack first."""
        return list(reversed(self._entries))

    def poke_entries_top_first(self, entries: List[int]) -> None:
        """Load the stack directly (top first), bypassing the port."""
        if len(entries) > self.capacity:
            raise ValueError(f"{self.name}: {len(entries)} exceeds capacity")
        self._entries = list(reversed(entries))
        self.top.stage(self._entries[-1] if self._entries else 0)
        self.top.commit()
        self.size.stage(len(self._entries))
        self.size.commit()
