"""The label stack modifier's datapath (Figure 12).

Holds every storage and arithmetic element of the design:

* the label :class:`~repro.hw.stack.HardwareStack`,
* the three-level :class:`~repro.hw.info_base.InfoBase`,
* the **entry register** holding the label entry currently being
  modified ("label stack entries can be stored from ... a register that
  holds the label entry currently being modified"),
* the **TTL counter** that decrements the entry's TTL,
* the three equality comparators (32-bit packet-identifier compare,
  20-bit label compare, 10-bit index compare),
* the **input latches** that capture the user's command operands when
  the main FSM accepts an operation (the paper's "Data in / Data type /
  Packet identifier / Stack level" inputs).

Source-selection multiplexers of Figure 12 (CoS-bits source, TTL
source, new-entry label source, index source) are realized in the
control FSMs' drive logic; each is documented at its point of use.
"""

from __future__ import annotations

from repro.hdl.comparator import EqualityComparator
from repro.hdl.counter import Counter
from repro.hdl.register import Register
from repro.hdl.simulator import Component, Simulator
from repro.hw.info_base import LEVEL_DEPTH, InfoBase
from repro.hw.stack import ENTRY_WIDTH, HardwareStack
from repro.mpls import label as labelmod

#: Width of the external data input: a 40-bit label pair (two 20-bit
#: labels); narrower payloads use the least significant bits.
DATA_IN_WIDTH = 40


def entry_fields(word: int) -> tuple:
    """Split a 32-bit stack entry word into (label, cos, s, ttl)."""
    return (
        (word >> 12) & labelmod.LABEL_MAX,
        (word >> 9) & 0x7,
        (word >> 8) & 0x1,
        word & 0xFF,
    )


def make_entry(label: int, cos: int, s: int, ttl: int) -> int:
    """Assemble a 32-bit stack entry word."""
    return ((label & labelmod.LABEL_MAX) << 12) | ((cos & 7) << 9) | ((s & 1) << 8) | (ttl & 0xFF)


class Datapath(Component):
    """All storage and arithmetic of the label stack modifier."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "dp",
        ib_depth: int = LEVEL_DEPTH,
        stack_capacity: int = 8,
    ) -> None:
        super().__init__(sim, name)
        self.stack = HardwareStack(sim, f"{name}.stack", capacity=stack_capacity)
        self.info_base = InfoBase(sim, f"{name}.ib", depth=ib_depth)
        # The register holding the entry being modified.
        self.entry_reg = Register(sim, f"{name}.entry", width=ENTRY_WIDTH)
        # The TTL decrement counter ("COUNTER TTL" in Figure 12).
        self.ttl_counter = Counter(sim, f"{name}.ttl", width=8)
        # The three comparators of Figure 12.
        self.cmp32 = EqualityComparator(sim, f"{name}.cmp32", width=32)
        self.cmp20 = EqualityComparator(sim, f"{name}.cmp20", width=20)
        self.cmp10 = EqualityComparator(
            sim, f"{name}.cmp10", width=max(10, ib_depth.bit_length())
        )

        # -- raw user inputs (sampled into latches when a command is
        # accepted; the driver only needs to hold them for one cycle).
        self.operation = self.wire("operation", 4)        # extoperation
        self.data_in = self.wire("data_in", DATA_IN_WIDTH)
        self.packet_id = self.wire("packet_id", 32)       # packetid
        self.label_lookup = self.wire("label_lookup", 20)
        self.op_in = self.wire("op_in", 2)                # operation_in
        self.level_in = self.wire("level_in", 2)          # level
        self.ttl_in = self.wire("ttl_in", 8)
        self.cos_in = self.wire("cos_in", 3)
        # Router type is configuration, not per-command data (Table 3:
        # "logic low is interpreted as LER ... logic high as LSR").
        self.rtrtype = self.wire("rtrtype", 1)

        # -- command latches (committed at the accept edge).
        self.lat_op = self.reg("lat_op", 4)
        self.lat_data = self.reg("lat_data", DATA_IN_WIDTH)
        self.lat_packet_id = self.reg("lat_packet_id", 32)
        self.lat_label_lookup = self.reg("lat_label_lookup", 20)
        self.lat_op_in = self.reg("lat_op_in", 2)
        self.lat_level = self.reg("lat_level", 2)
        self.lat_ttl = self.reg("lat_ttl", 8)
        self.lat_cos = self.reg("lat_cos", 3)

        #: Driven by the main FSM while it is idle and a command is
        #: pending; tells this component to capture the inputs.
        self.capture = self.wire("capture", 1)

    def settle(self) -> None:
        if self.capture.value:
            self.lat_op.stage(self.operation.value)
            self.lat_data.stage(self.data_in.value)
            self.lat_packet_id.stage(self.packet_id.value)
            self.lat_label_lookup.stage(self.label_lookup.value)
            self.lat_op_in.stage(self.op_in.value)
            self.lat_level.stage(self.level_in.value)
            self.lat_ttl.stage(self.ttl_in.value)
            self.lat_cos.stage(self.cos_in.value)

    # -- convenient views of the latched label pair --------------------------
    @property
    def lat_pair_index(self) -> int:
        """The index half of the latched 40-bit label pair (bits 39:20)."""
        return (self.lat_data.value >> 20) & labelmod.LABEL_MAX

    @property
    def lat_pair_label(self) -> int:
        """The label half of the latched pair (bits 19:0)."""
        return self.lat_data.value & labelmod.LABEL_MAX

    @property
    def lat_entry_word(self) -> int:
        """The low 32 bits of the latched data: a stack entry word."""
        return self.lat_data.value & 0xFFFFFFFF
