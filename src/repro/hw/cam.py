"""A content-addressable (CAM) information base: the design alternative.

The paper's information base finds a label pair by *walking* a RAM with
a counter -- 3 cycles per entry, hence Table 6's ``3n + 5``.  Real
wire-speed MPLS hardware instead used CAMs: one comparator per stored
entry, all matching in parallel, so a lookup costs a constant number of
cycles regardless of occupancy.

This module provides that alternative as RTL
(:class:`CAMInfoBaseLevel`) plus its cost model, so the search-scaling
ablation can show both sides of the trade the paper made:

* **cycles**: CAM lookup = 2 cycles (present key / registered match)
  vs ``3n + 5``;
* **area**: a CAM burns one ``width``-bit comparator per entry in
  *logic*, while the paper's design stores everything in block RAM.
  :func:`cam_logic_elements` estimates the LE cost so the device model
  can show why a 2005-era FPGA design would choose the RAM walk for a
  1K-entry table.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.device import FPGADevice, STRATIX_EP1S40
from repro.hdl.simulator import Component, Simulator
from repro.hw.info_base import LABEL_WIDTH, OP_WIDTH

#: Cycles for a CAM lookup: key presented in one cycle, the match
#: (priority-encoded over all parallel comparators) registered at the
#: next edge.
CAM_SEARCH_CYCLES = 2

#: Rough logic cost of one CAM entry: a w-bit equality comparator plus
#: the valid bit and priority-encode contribution, in 4-input LEs.
#: (A w-bit comparator needs about w/2 LEs; overhead for the encoder
#: roughly doubles it.)
LES_PER_CAM_BIT = 1.0


class CAMInfoBaseLevel(Component):
    """One information-base level with parallel match.

    Write port (appends like the RAM level): ``wr_en`` / ``wr_index``
    / ``wr_label`` / ``wr_op``.

    Search port: drive ``search_en`` + ``search_key`` for one cycle;
    after the next edge ``match_valid`` / ``match_label`` / ``match_op``
    hold the (first-match) result and ``done`` pulses.

    The parallel comparator array is modelled by matching the whole
    store during the settle phase -- combinationally, exactly what the
    hardware's per-entry comparators do -- with the result registered
    at the edge.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        index_width: int,
        depth: int = 1024,
    ) -> None:
        super().__init__(sim, name)
        self.depth = depth
        self.index_width = index_width
        self.wr_en = self.wire("wr_en", 1)
        self.wr_index = self.wire("wr_index", index_width)
        self.wr_label = self.wire("wr_label", LABEL_WIDTH)
        self.wr_op = self.wire("wr_op", OP_WIDTH)
        self.search_en = self.wire("search_en", 1)
        self.search_key = self.wire("search_key", index_width)
        self.match_valid = self.reg("match_valid", 1)
        self.match_label = self.reg("match_label", LABEL_WIDTH)
        self.match_op = self.reg("match_op", OP_WIDTH)
        self.done = self.reg("done", 1)
        self.overflow = self.reg("overflow", 1)
        self._entries: List[Tuple[int, int, int]] = []

    @property
    def count(self) -> int:
        return len(self._entries)

    def settle(self) -> None:
        # the parallel match happens combinationally; the result is
        # staged for registration at the edge (1 cycle of latency)
        if self.search_en.value:
            key = self.search_key.value
            hit: Optional[Tuple[int, int, int]] = None
            for entry in self._entries:  # models N comparators at once
                if entry[0] == key:
                    hit = entry
                    break  # priority encoder: lowest index wins
            if hit is None:
                self.match_valid.stage(0)
            else:
                self.match_valid.stage(1)
                self.match_label.stage(hit[1])
                self.match_op.stage(hit[2])
            self.done.stage(1)
        else:
            self.done.stage(0)

    def tick(self) -> None:
        if self.wr_en.value:
            if len(self._entries) >= self.depth:
                self.overflow.stage(1)
                self.overflow.commit()
            else:
                self._entries.append(
                    (
                        self.wr_index.value,
                        self.wr_label.value,
                        self.wr_op.value,
                    )
                )

    def reset(self) -> None:
        self._entries.clear()

    def dump_pairs(self) -> List[Tuple[int, int, int]]:
        return list(self._entries)


def cam_logic_elements(
    entries: int, index_width: int = 20
) -> int:
    """Estimated logic-element cost of a CAM with ``entries`` rows."""
    return int(entries * index_width * LES_PER_CAM_BIT)


def cam_fits(
    entries: int,
    index_width: int = 20,
    device: FPGADevice = STRATIX_EP1S40,
    budget_fraction: float = 0.4,
) -> bool:
    """Would the CAM fit in a sane fraction of the device's logic?

    ``budget_fraction`` caps how much fabric the lookup structure may
    monopolize; the rest is needed for the control unit, datapath,
    packet processing and I/O.
    """
    return cam_logic_elements(entries, index_width) <= (
        device.logic_elements * budget_fraction
    )
