"""Signal inventory: the paper's Tables 1-5 mapped to this model.

Each entry maps a signal name from the paper's tables to where the same
role lives in the Python RTL, so the implementation can be audited
against the paper line by line.  The mapping is also used by the
benchmarks to label waveform traces with the paper's signal names.
"""

from __future__ import annotations

from typing import Dict

#: Table 1 -- signals of the main state machine.
MAIN_SIGNALS: Dict[str, str] = {
    "clk": "implicit in Simulator.step()",
    "enable": "dp.operation != NONE while main is IDLE",
    "enableibint": "ib_iface.enable (driven in IB_ACTIVE)",
    "enablelblint": "lbl_iface.enable (driven in LBL_ACTIVE)",
    "extoperation": "dp.operation / dp.lat_op",
    "ibready": "ib_iface.finishing",
    "lblstckready": "lbl_iface.finishing",
    "readdata": "UserOp.SEARCH routing in MainFSM.transition",
    "reset": "Simulator.reset() via ModifierDriver.reset()",
    "savedata": "UserOp.WRITE_PAIR routing in MainFSM.transition",
    "updatelblstk": "UserOp.UPDATE routing in MainFSM.transition",
}

#: Tables 2-3 -- signals of the label stack interface.
LABEL_STACK_SIGNALS: Dict[str, str] = {
    "bttmstckbit": "S bit computed in PUSH_NEW (stack occupancy)",
    "cosbits": "cos field of dp.entry_reg",
    "cosbitssrc": "REMOVE_TOP: stack entry vs control path (lat_cos)",
    "dpoperation": "search.op_out consumed in VERIFY_INFO",
    "donelblupdt": "lbl_iface.done",
    "enable": "lbl_iface.enable",
    "extoperation": "dp.lat_op",
    "indexsource": "_drive_search_request: packet id vs top label",
    "itemfound": "search.found",
    "lblop": "dp.stack.op (StackOp encoding)",
    "newlblsrc": "PUSH_NEW: label from search.label_out (memory)",
    "pktdcrd": "lbl_iface.discard",
    "rtrtype": "dp.rtrtype (0 = LER, 1 = LSR)",
    "srchdone": "search.finishing / search.done",
    "srchenbl": "search.req (driven in SEARCH_ENABLE)",
    "svstkval": "dp.entry_reg.en (driven in REMOVE_TOP)",
    "stckctrl": "dp.stack.op",
    "stkentsrc": "PUSH_OLD (entry register) vs USER_PUSH (external)",
    "stacksize": "dp.stack.size",
    "ttl": "dp.ttl_counter.count",
    "ttlcntctrl": "dp.ttl_counter.{load,en,down}",
    "ttlsource": "REMOVE_TOP: stack entry TTL vs control path (lat_ttl)",
    "ttlvalue": "TTL field written in PUSH_NEW/UPDATE_TOP/PUSH_OLD",
}

#: Table 4 -- signals of the information base interface.
INFO_BASE_SIGNALS: Dict[str, str] = {
    "clk": "implicit",
    "dnibupdate": "ib_iface.done",
    "enable": "ib_iface.enable",
    "savedata": "WRITE_PAIR state (drives level wr_* wires)",
    "readdata": "SEARCH state (drives search.req)",
    "reset": "Simulator.reset()",
    "srchdone": "search.finishing",
    "srchenbl": "search.req",
    "writecontrol": "InfoBaseLevel.settle write routing",
}

#: Table 5 -- signals of the search module.
SEARCH_SIGNALS: Dict[str, str] = {
    "aeb_10b": "dp.cmp10.eq (read index vs last stored index)",
    "aeb_20b": "dp.cmp20.eq (label key compare, levels 2-3)",
    "aeb_32b": "dp.cmp32.eq (packet identifier compare, level 1)",
    "clk": "implicit",
    "infoenbl": "InfoBaseLevel read routing (always-on registered read)",
    "item_found": "search.found",
    "lsi_enable": "search.req from lbl_iface (update path)",
    "level": "search.level_num",
    "level_source": "lbl_iface._drive_search_request vs ib_iface",
    "readaddrctrl": "level.read_counter.{clear,en}",
    "readvals": "level.rd_index / rd_label / rd_op",
    "reset": "Simulator.reset()",
    "searchdone": "search.done",
}

#: The simulation-facing names used in Figures 14-16, mapped to traced
#: signals of this model (see the figure benchmarks).
FIGURE_SIGNALS: Dict[str, str] = {
    "level": "search.level_num",
    "old_label": "index half of dp.data_in",
    "new_label": "label half of dp.data_in",
    "operation_in": "dp.op_in",
    "packetid": "dp.packet_id",
    "save": "UserOp.WRITE_PAIR issue",
    "lookup": "UserOp.SEARCH issue",
    "label_lookup": "dp.label_lookup",
    "r_index": "level.read_counter.count",
    "w_index": "level.write_counter.count",
    "label_out": "search.label_out",
    "operation_out": "search.op_out",
    "lookup_done": "search.done",
    "packetdiscard": "search.miss (pure lookups) / modifier.packet_discard",
}
