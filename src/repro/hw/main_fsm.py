"""The main state machine (paper Figure 8).

"It is used to ensure that the remaining state machines are not working
at the same time and possibly generate inconsistent results."  The main
FSM sits in IDLE until the user presents an operation, captures the
command operands into the datapath latches, enables exactly one of the
two interface machines, and waits for it to finish.

The mutual-exclusion invariant -- never both interfaces enabled -- is a
direct consequence of the three-state structure and is property-tested
in ``tests/hw/test_fsm_invariants.py``.
"""

from __future__ import annotations

from repro.hdl.fsm import FSM, State
from repro.hdl.simulator import Simulator
from repro.hw.datapath import Datapath
from repro.hw.info_base_fsm import InfoBaseInterfaceFSM
from repro.hw.label_stack_fsm import LabelStackInterfaceFSM
from repro.hw.opcodes import UserOp

STATES = ["IDLE", "LBL_ACTIVE", "IB_ACTIVE"]

#: Operations routed to the label-stack interface.
_LBL_OPS = (UserOp.USER_PUSH, UserOp.USER_POP, UserOp.UPDATE)
#: Operations routed to the information-base interface.
_IB_OPS = (
    UserOp.WRITE_PAIR,
    UserOp.SEARCH,
    UserOp.MODIFY_PAIR,
    UserOp.REMOVE_PAIR,
    UserOp.READ_ENTRY,
)


class MainFSM(FSM):
    """Figure 8: IDLE / LABEL INTERFACE ACTIVE / INFO BASE INTERFACE
    ACTIVE."""

    def __init__(
        self,
        sim: Simulator,
        dp: Datapath,
        lbl_iface: LabelStackInterfaceFSM,
        ib_iface: InfoBaseInterfaceFSM,
        name: str = "main",
    ) -> None:
        super().__init__(sim, name, STATES)
        self.dp = dp
        self.lbl_iface = lbl_iface
        self.ib_iface = ib_iface

    def output(self) -> None:
        state = self.state_name
        if state == "IDLE":
            # capture the operands the moment a command appears
            if self.dp.operation.value != UserOp.NONE:
                self.dp.capture.drive(1)
        elif state == "LBL_ACTIVE":
            self.lbl_iface.enable.drive(1)
        elif state == "IB_ACTIVE":
            self.ib_iface.enable.drive(1)

    def transition(self) -> State:
        state = self.state_name
        if state == "IDLE":
            op = self.dp.operation.value
            if op in _LBL_OPS:
                return self.s("LBL_ACTIVE")
            if op in _IB_OPS:
                return self.s("IB_ACTIVE")
            return self.s("IDLE")
        if state == "LBL_ACTIVE":
            # retire on the same edge as the interface machine
            if self.lbl_iface.finishing.value:
                return self.s("IDLE")
            return self.s("LBL_ACTIVE")
        # IB_ACTIVE
        if self.ib_iface.finishing.value:
            return self.s("IDLE")
        return self.s("IB_ACTIVE")
