"""The paper's hardware: the MPLS label stack modifier as RTL.

This subpackage is the register-transfer-level model of the paper's
Figures 6-13, built on the :mod:`repro.hdl` simulation kernel:

* :mod:`repro.hw.stack` -- the hardware label stack of the datapath,
* :mod:`repro.hw.info_base` -- the three-level information base with
  its index / label / operation memory components (Figure 13),
* :mod:`repro.hw.datapath` -- the datapath of Figure 12: stack,
  information base, new-label register, TTL counter, and the three
  comparators (32 / 20 / 10 bits),
* :mod:`repro.hw.search_fsm` -- the search state machine (Figure 11),
* :mod:`repro.hw.info_base_fsm` -- the information-base interface
  state machine (Figure 10),
* :mod:`repro.hw.label_stack_fsm` -- the label-stack interface state
  machine (Figure 9),
* :mod:`repro.hw.main_fsm` -- the main state machine (Figure 8),
* :mod:`repro.hw.modifier` -- the assembled label stack modifier,
* :mod:`repro.hw.driver` -- a transaction-level driver that issues
  operations and counts exact clock cycles,
* :mod:`repro.hw.signals` -- the signal inventory of the paper's
  Tables 1-5 mapped to implementation signals.

Cycle-count contract (Table 6): reset, user push, user pop and
label-pair writes each take 3 cycles; a search over a level holding
``n`` pairs takes ``3n + 5`` cycles worst case; the information-base
driven swap costs 6 further cycles.
"""

from repro.hw.opcodes import (
    UserOp,
    StackOp,
    SearchResult,
    UpdateResult,
    MgmtResult,
    ReadEntryResult,
)
from repro.hw.stack import HardwareStack
from repro.hw.info_base import InfoBase, InfoBaseLevel
from repro.hw.datapath import Datapath
from repro.hw.modifier import LabelStackModifier
from repro.hw.driver import ModifierDriver

__all__ = [
    "UserOp",
    "StackOp",
    "SearchResult",
    "UpdateResult",
    "MgmtResult",
    "ReadEntryResult",
    "HardwareStack",
    "InfoBase",
    "InfoBaseLevel",
    "Datapath",
    "LabelStackModifier",
    "ModifierDriver",
]
