"""The assembled label stack modifier (paper Figure 7).

Wires the datapath to the four control-unit state machines and exposes
the user-facing interface: the command wires of the datapath, the
combined ``done`` pulse, the ``packet_discard`` pulse, and the search
outputs (``label_out`` / ``operation_out`` / ``lookup_done`` of
Figures 14-16).

The modifier owns its :class:`~repro.hdl.simulator.Simulator` unless
one is supplied, so a bench can instantiate several independent
modifiers.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hdl.simulator import Component, Simulator
from repro.hw.datapath import Datapath, entry_fields
from repro.hw.info_base import LEVEL_DEPTH
from repro.hw.info_base_fsm import InfoBaseInterfaceFSM
from repro.hw.label_stack_fsm import LabelStackInterfaceFSM
from repro.hw.main_fsm import MainFSM
from repro.hw.search_fsm import SearchFSM
from repro.mpls.label import LabelEntry


class LabelStackModifier(Component):
    """Control unit + datapath, as one instantiable block."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        name: str = "lsm",
        ib_depth: int = LEVEL_DEPTH,
        stack_capacity: int = 8,
    ) -> None:
        if sim is None:
            sim = Simulator()
        # the datapath and FSMs register themselves with the simulator;
        # this component is registered last so its settle() (which ORs
        # status signals) still participates in the fixed point.
        self.dp = Datapath(sim, f"{name}.dp", ib_depth, stack_capacity)
        self.search = SearchFSM(sim, self.dp, f"{name}.search")
        self.ib_iface = InfoBaseInterfaceFSM(
            sim, self.dp, self.search, f"{name}.ib_iface"
        )
        self.lbl_iface = LabelStackInterfaceFSM(
            sim, self.dp, self.search, f"{name}.lbl_iface"
        )
        self.main = MainFSM(
            sim, self.dp, self.lbl_iface, self.ib_iface, f"{name}.main"
        )
        super().__init__(sim, name)
        #: Combined transaction-done pulse (any FSM's done).
        self.done = self.wire("done", 1)
        #: Combined packet-discard pulse (search miss or verify fail).
        self.packet_discard = self.wire("packet_discard", 1)

    def settle(self) -> None:
        self.done.drive(
            1
            if (
                self.search.done.value
                or self.ib_iface.done.value
                or self.lbl_iface.done.value
            )
            else 0
        )
        self.packet_discard.drive(
            1
            if (self.search.miss.value or self.lbl_iface.discard.value)
            else 0
        )

    # -- observability helpers ------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while any control FSM is outside IDLE."""
        return not (
            self.main.in_state("IDLE")
            and self.lbl_iface.in_state("IDLE")
            and self.ib_iface.in_state("IDLE")
            and self.search.in_state("IDLE")
        )

    def stack_entries(self) -> List[LabelEntry]:
        """The current label stack decoded, top first."""
        out = []
        for word in self.dp.stack.entries_top_first():
            label, cos, s, ttl = entry_fields(word)
            out.append(LabelEntry(label=label, cos=cos, s=s, ttl=ttl))
        return out

    def ib_counts(self):
        return self.dp.info_base.counts()
