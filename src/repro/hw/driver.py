"""Transaction-level driver for the label stack modifier.

The driver plays the role of the paper's "user" (and of the ingress
packet-processing module): it presents a command on the modifier's
input wires for one clock cycle, then steps the simulator until the
combined ``done`` pulse is observed with every control FSM back in
IDLE.  The number of clock edges from command issue to completion is
the transaction's exact cycle count -- the quantity Table 6 reports.

Transactions:

=====================  =======================================
:meth:`reset`          3 cycles (Table 6 "Reset")
:meth:`user_push`      3 cycles ("push from the user")
:meth:`user_pop`       3 cycles ("pop from the user")
:meth:`write_pair`     3 cycles ("Write label pair")
:meth:`search`         3n + 5 worst case ("Search information base")
:meth:`update`         search + 6 for swap/pop ("swap from the
                       information base"), +7 for a nested push
=====================  =======================================
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.hdl.signal import Wire
from repro.hdl.simulator import Component, Simulator
from repro.hw.model import StagingBackpressure
from repro.hw.modifier import LabelStackModifier
from repro.hw.opcodes import (
    MgmtResult,
    ReadEntryResult,
    SearchResult,
    UpdateResult,
    UserOp,
)
from repro.mpls.label import LabelEntry, LabelOp

#: Table 6's fixed reset cost.
RESET_CYCLES = 3

#: Cost of one shadow-bank write (same write port as WRITE_PAIR).
BANK_WRITE_CYCLES = 3
#: Cost of the atomic bank swap (one clock edge).
BANK_SWAP_CYCLES = 1

#: Safety bound on any single transaction (a full 1024-entry search is
#: 3077 cycles; anything an order of magnitude beyond that is a hang).
MAX_TRANSACTION_CYCLES = 40_000


class _WireDriver(Component):
    """Holds requested wire values and drives them each settle pass."""

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self._values: Dict[Wire, int] = {}

    def set(self, wire: Wire, value: int) -> None:
        self._values[wire] = value

    def clear(self) -> None:
        self._values.clear()

    def settle(self) -> None:
        for wire, value in self._values.items():
            wire.drive(value)


class ModifierDriver:
    """Issues operations against a :class:`LabelStackModifier` and
    reports exact cycle counts."""

    def __init__(
        self,
        modifier: Optional[LabelStackModifier] = None,
        staging_limit: Optional[int] = None,
        **kwargs,
    ) -> None:
        self.modifier = modifier if modifier is not None else LabelStackModifier(**kwargs)
        self.sim = self.modifier.sim
        self._pins = _WireDriver(self.sim, "pins")
        if staging_limit is not None and staging_limit < 1:
            raise ValueError("staging_limit must be >= 1")
        #: bound on bank writes in flight between drains (None = legacy
        #: unbounded staging); full queue raises StagingBackpressure
        self.staging_limit = staging_limit
        self._staged_since_drain = 0
        #: per-level staged pairs while a bank transaction is open
        self._staged_banks: Optional[List[List[Tuple[int, int, int]]]] = None
        self.total_cycles = 0
        #: mirrors :attr:`repro.hw.model.FunctionalModifier.state_version`:
        #: bumped whenever the active information base may have changed,
        #: so batched nodes can key memoized lookups on it.  Bumps are
        #: conservative (a no-op modify still bumps) -- over-invalidating
        #: a memo is safe, under-invalidating is not.
        self.state_version = 0
        #: Optional :class:`repro.obs.profiling.CycleProfiler`; when
        #: attached, every transaction's cycles are scoped under the
        #: operation's name for per-operation breakdowns.
        self.profiler = None
        #: Open :meth:`span_scope` context, or None (the default: no
        #: per-transaction span events are emitted).
        self._span_ctx = None

    def attach_profiler(self, profiler) -> None:
        """Scope subsequent transactions under the profiler's
        operation labels (see :mod:`repro.obs.profiling`)."""
        self.profiler = profiler

    @contextmanager
    def span_scope(
        self,
        node: str = "rtl",
        uid: int = 0,
        flow_id: int = 0,
        anchor_time: float = 0.0,
        clock_hz: float = 50e6,
    ) -> Iterator[None]:
        """Attribute the transactions inside the block to one packet.

        While open, every completed transaction is emitted as a
        cycles-domain :class:`~repro.obs.events.HWOpExecuted` event
        (when telemetry is enabled and a span recorder is attached),
        with cycle offsets relative to the scope start -- the RTL
        driver's half of the cycle-to-time correlation.
        """
        if self._span_ctx is not None:
            raise RuntimeError("span scope already open")
        self._span_ctx = {
            "node": node,
            "uid": uid,
            "flow_id": flow_id,
            "anchor_time": anchor_time,
            "clock_hz": clock_hz,
            "base_cycle": self.sim.cycle,
        }
        try:
            yield
        finally:
            self._span_ctx = None

    def _emit_span(self, op_name: str, start_cycle: int, end_cycle: int) -> None:
        ctx = self._span_ctx
        from repro.obs.telemetry import get_telemetry

        tel = get_telemetry()
        if not tel.enabled or tel.spans is None:
            return
        from repro.obs.events import HWOpExecuted

        base = ctx["base_cycle"]
        event = HWOpExecuted(
            node=ctx["node"],
            uid=ctx["uid"],
            flow_id=ctx["flow_id"],
            phase=op_name.lower().replace("_", "-"),
            parent_phase=None,
            cycle_start=start_cycle - base,
            cycle_end=end_cycle - base,
            anchor_time=ctx["anchor_time"],
            clock_hz=ctx["clock_hz"],
        )
        event.time = float(start_cycle - base)
        tel.events.emit(event)

    # -- low-level transaction plumbing -----------------------------------
    def _issue(self, op: UserOp, **operands: int) -> int:
        """Present a command for one cycle, run to completion, return
        the cycle count."""
        start_cycle = self.sim.cycle
        if self.profiler is not None:
            with self.profiler.operation(op.name):
                cycles = self._issue_unprofiled(op, **operands)
        else:
            cycles = self._issue_unprofiled(op, **operands)
        if self._span_ctx is not None:
            self._emit_span(op.name, start_cycle, self.sim.cycle)
        return cycles

    def _issue_unprofiled(self, op: UserOp, **operands: int) -> int:
        if self.modifier.busy:
            raise RuntimeError("modifier is busy; cannot issue a command")
        dp = self.modifier.dp
        self._pins.set(dp.operation, int(op))
        for field, value in operands.items():
            self._pins.set(getattr(dp, field), value)
        self.sim.step()  # edge 1: the main FSM accepts and latches
        cycles = 1
        # the command wires only need to be valid in the accept cycle
        self._pins.set(dp.operation, int(UserOp.NONE))
        while cycles < MAX_TRANSACTION_CYCLES:
            self.sim.step()
            cycles += 1
            # Read the registered done pulses directly: registers are
            # up to date immediately after the edge, whereas the OR'd
            # `done` wire only refreshes during the next settle phase.
            done = (
                self.modifier.search.done.value
                or self.modifier.ib_iface.done.value
                or self.modifier.lbl_iface.done.value
            )
            if done and not self.modifier.busy:
                self.total_cycles += cycles
                return cycles
        raise TimeoutError(
            f"{op.name} did not complete within {MAX_TRANSACTION_CYCLES} cycles"
        )

    def set_router_type(self, is_lsr: bool) -> None:
        """Configure the ``rtrtype`` pin (Table 3: low = LER, high = LSR)."""
        self._pins.set(self.modifier.dp.rtrtype, 1 if is_lsr else 0)

    # -- transactions ------------------------------------------------------
    def reset(self) -> int:
        """The 3-cycle reset sequence of Table 6."""
        self.sim.reset()
        self._pins.clear()
        if self.profiler is not None:
            # the async reset changed state without a clock edge
            self.profiler.resync()
            with self.profiler.operation("RESET"):
                self.sim.step(RESET_CYCLES)
        else:
            self.sim.step(RESET_CYCLES)
        self.state_version += 1
        self.total_cycles += RESET_CYCLES
        return RESET_CYCLES

    def user_push(self, entry: LabelEntry) -> int:
        """Push a stack entry supplied directly by the user."""
        return self._issue(UserOp.USER_PUSH, data_in=entry.encode())

    def user_pop(self) -> Tuple[Optional[LabelEntry], int]:
        """Pop the top entry; returns (popped entry or None, cycles)."""
        entries = self.modifier.stack_entries()
        popped = entries[0] if entries else None
        cycles = self._issue(UserOp.USER_POP)
        return popped, cycles

    def write_pair(
        self,
        level: int,
        index: int,
        new_label: int,
        op: LabelOp,
    ) -> int:
        """Store a label pair + operation at an information-base level.

        ``index`` is the 32-bit packet identifier at level 1 and a
        20-bit label at levels 2-3 (they travel over different input
        pins, as in the paper's datapath).
        """
        if level not in (1, 2, 3):
            raise ValueError(f"level must be 1..3, got {level}")
        operands = dict(level_in=level, op_in=int(op))
        if level == 1:
            operands["packet_id"] = index
            operands["data_in"] = new_label & 0xFFFFF
        else:
            operands["data_in"] = ((index & 0xFFFFF) << 20) | (new_label & 0xFFFFF)
        self.state_version += 1
        return self._issue(UserOp.WRITE_PAIR, **operands)

    def search(self, level: int, key: int) -> SearchResult:
        """Look up a label pair (the read path of Figures 14-16)."""
        if level not in (1, 2, 3):
            raise ValueError(f"level must be 1..3, got {level}")
        operands = dict(level_in=level)
        if level == 1:
            operands["packet_id"] = key
        else:
            operands["label_lookup"] = key & 0xFFFFF
        cycles = self._issue(UserOp.SEARCH, **operands)
        found = bool(self.modifier.search.found.value)
        return SearchResult(
            found=found,
            label=self.modifier.search.label_out.value if found else None,
            op=LabelOp(self.modifier.search.op_out.value) if found else None,
            discarded=bool(self.modifier.search.miss.value),
            cycles=cycles,
        )

    def update(
        self,
        packet_id: int = 0,
        ttl: int = 64,
        cos: int = 0,
    ) -> UpdateResult:
        """Run the full Figure 9 update flow.

        ``packet_id``/``ttl``/``cos`` are only consulted when the stack
        is empty (the LER ingress case); otherwise the top label keys
        the search and the TTL comes from the stack entry.
        """
        cycles = self._issue(
            UserOp.UPDATE,
            packet_id=packet_id,
            ttl_in=ttl,
            cos_in=cos,
        )
        lbl = self.modifier.lbl_iface
        discarded = bool(lbl.discard.value)
        performed = (
            LabelOp(lbl.performed.value)
            if lbl.performed_valid.value and not discarded
            else None
        )
        return UpdateResult(
            performed=performed,
            discarded=discarded,
            cycles=cycles,
            stack=tuple(self.modifier.stack_entries()),
        )

    # -- double-buffered bank programming ------------------------------------
    @property
    def in_bank_transaction(self) -> bool:
        return self._staged_banks is not None

    def _burn(self, label: str, cycles: int) -> int:
        """Advance the clock with no command presented (the FSMs sit in
        IDLE), keeping the cycle accounting and any attached profiler
        in lock-step with the simulator."""
        if self.profiler is not None:
            with self.profiler.operation(label):
                self.sim.step(cycles)
        else:
            self.sim.step(cycles)
        self.total_cycles += cycles
        return cycles

    def bank_begin(self) -> None:
        """Open the shadow banks: :meth:`bank_write_pair` assembles a
        fresh information base that stays invisible to searches and
        updates until :meth:`bank_commit` flips it in."""
        if self._staged_banks is not None:
            raise RuntimeError("bank transaction already open")
        self._staged_banks = [[], [], []]
        self._staged_since_drain = 0

    def bank_write_pair(
        self, level: int, index: int, new_label: int, op: LabelOp
    ) -> int:
        """Write one pair into the shadow bank.  The write burns the
        same 3 cycles as WRITE_PAIR -- the pair travels over the same
        write port -- but lands in the inactive bank."""
        if self._staged_banks is None:
            raise RuntimeError("no bank transaction open")
        if level not in (1, 2, 3):
            raise ValueError(f"level must be 1..3, got {level}")
        if (
            self.staging_limit is not None
            and self._staged_since_drain >= self.staging_limit
        ):
            raise StagingBackpressure(
                f"bank command queue full ({self.staging_limit} writes "
                f"since last drain)"
            )
        self._staged_since_drain += 1
        mask = 0xFFFFFFFF if level == 1 else 0xFFFFF
        self._staged_banks[level - 1].append(
            (index & mask, new_label & 0xFFFFF, int(op))
        )
        return self._burn("BANK_WRITE", BANK_WRITE_CYCLES)

    def bank_commit(self) -> int:
        """Flip the bank select in one cycle: every level's memories
        and write counter adopt the staged contents atomically."""
        if self._staged_banks is None:
            raise RuntimeError("no bank transaction open")
        staged, self._staged_banks = self._staged_banks, None
        self._staged_since_drain = 0
        for level, pairs in enumerate(staged, start=1):
            self.modifier.dp.info_base.level(level).load_pairs(pairs)
        self.state_version += 1
        return self._burn("BANK_SWAP", BANK_SWAP_CYCLES)

    def bank_drain(self) -> int:
        """Wait for the bounded bank-write command queue to empty.

        Zero extra cycles: each pair\'s 3-cycle BANK_WRITE already
        covers its drain into the shadow-bank memories; this only
        re-opens the queue.  Returns how many writes were outstanding."""
        if self._staged_banks is None:
            raise RuntimeError("no bank transaction open")
        drained = self._staged_since_drain
        self._staged_since_drain = 0
        return drained

    def bank_rollback(self) -> None:
        """Abandon the shadow banks (zero cycles: the live memories
        were never touched)."""
        if self._staged_banks is None:
            raise RuntimeError("no bank transaction open")
        self._staged_banks = None
        self._staged_since_drain = 0

    # -- information-base management ---------------------------------------
    def modify_pair(
        self, level: int, index: int, new_label: int, op: LabelOp
    ) -> MgmtResult:
        """Rewrite an existing pair's label and operation in place.

        The pair is located by a search on ``index``; an absent index
        reports ``found=False`` and changes nothing.
        """
        if level not in (1, 2, 3):
            raise ValueError(f"level must be 1..3, got {level}")
        operands = dict(level_in=level, op_in=int(op))
        if level == 1:
            operands["packet_id"] = index
            operands["data_in"] = new_label & 0xFFFFF
        else:
            operands["label_lookup"] = index & 0xFFFFF
            operands["data_in"] = ((index & 0xFFFFF) << 20) | (
                new_label & 0xFFFFF
            )
        cycles = self._issue(UserOp.MODIFY_PAIR, **operands)
        self.state_version += 1
        return MgmtResult(
            found=bool(self.modifier.ib_iface.mgmt_found.value),
            cycles=cycles,
        )

    def remove_pair(self, level: int, index: int) -> MgmtResult:
        """Delete the pair keyed by ``index`` (the last stored pair
        fills the hole, keeping the array dense)."""
        if level not in (1, 2, 3):
            raise ValueError(f"level must be 1..3, got {level}")
        operands = dict(level_in=level)
        if level == 1:
            operands["packet_id"] = index
        else:
            operands["label_lookup"] = index & 0xFFFFF
        cycles = self._issue(UserOp.REMOVE_PAIR, **operands)
        self.state_version += 1
        return MgmtResult(
            found=bool(self.modifier.ib_iface.mgmt_found.value),
            cycles=cycles,
        )

    def read_entry(self, level: int, address: int) -> ReadEntryResult:
        """Read the pair stored at ``address`` directly (no search)."""
        if level not in (1, 2, 3):
            raise ValueError(f"level must be 1..3, got {level}")
        if address < 0:
            raise ValueError(f"negative address {address}")
        cycles = self._issue(
            UserOp.READ_ENTRY, level_in=level, data_in=address & 0x7FF
        )
        iface = self.modifier.ib_iface
        valid = bool(iface.mgmt_found.value)
        return ReadEntryResult(
            valid=valid,
            index=iface.rd_out_index.value if valid else None,
            label=iface.rd_out_label.value if valid else None,
            op=LabelOp(iface.rd_out_op.value) if valid else None,
            cycles=cycles,
        )

    # -- fault injection ----------------------------------------------------
    def corrupt_pair(
        self,
        level: int,
        address: int,
        index_xor: int = 0,
        label_xor: int = 0,
        op_xor: int = 0,
    ) -> bool:
        """Flip bits directly in the information-base memories (an SEU
        model: no transaction, no cycles).  Returns False when
        ``address`` holds no pair."""
        if level not in (1, 2, 3):
            raise ValueError(f"level must be 1..3, got {level}")
        lvl = self.modifier.dp.info_base.level(level)
        if not 0 <= address < lvl.count:
            return False
        if index_xor:
            lvl.index_mem.poke(
                address, lvl.index_mem.peek(address) ^ index_xor
            )
        if label_xor:
            lvl.label_mem.poke(
                address, lvl.label_mem.peek(address) ^ label_xor
            )
        if op_xor:
            lvl.op_mem.poke(address, lvl.op_mem.peek(address) ^ op_xor)
        self.state_version += 1
        return True

    def scrub(self, level: int, expected, repair: bool = True):
        """Verify (and repair) one level against the control plane's
        shadow; same semantics as
        :meth:`repro.hw.model.FunctionalModifier.scrub`, measured in
        real RTL transaction cycles."""
        from repro.hw.model import scrub_level

        return scrub_level(self, level, expected, repair=repair)

    # -- inspection ---------------------------------------------------------
    def stack(self):
        return self.modifier.stack_entries()

    def ib_counts(self):
        return self.modifier.ib_counts()

    def ib_pairs(self, level: int):
        """The stored (index, label, op) triples of one level."""
        return self.modifier.dp.info_base.level(level).dump_pairs()
