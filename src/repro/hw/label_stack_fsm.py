"""The label-stack interface state machine (paper Figure 9).

Owns every mutation of the label stack:

* direct pushes and pops commanded by the user (``USER PUSH`` /
  ``USER POP``),
* the full *update* flow: enable the search machine over the
  information base, then -- on success -- remove the top entry, update
  the TTL, verify the stored operation for consistency, and perform the
  stored push / swap / pop; on any failure (no pair found, expired TTL,
  inconsistent operation) discard the packet by resetting the stack,
  exactly as the paper describes ("The packet is discarded (i.e. the
  label stack is reset)").

State-to-paper mapping: SEARCH_ENABLE is Figure 9's "SEARCH ENABLE",
GET_RESULT the result-capture cycle, REMOVE_TOP / UPDATE_TTL /
VERIFY_INFO / UPDATE_TOP / PUSH_OLD / PUSH_NEW carry the paper's state
names, DISCARD is "DISCARD PACKET", and DONE is the completion
handshake back to the main FSM.

Cycle costs by construction: user push/pop complete in 3 cycles; the
information-base-driven swap and pop cost 6 cycles beyond the search;
the push costs 7 (it visits both PUSH_OLD and PUSH_NEW); a discard
after verification costs 5.
"""

from __future__ import annotations

from repro.hdl.fsm import FSM, State
from repro.hdl.simulator import Simulator
from repro.hw.datapath import Datapath, entry_fields, make_entry
from repro.hw.opcodes import StackOp, UserOp
from repro.hw.search_fsm import SearchFSM
from repro.mpls.label import LabelOp

STATES = [
    "IDLE",
    "USER_PUSH",
    "USER_POP",
    "SEARCH_ENABLE",
    "GET_RESULT",
    "REMOVE_TOP",
    "UPDATE_TTL",
    "VERIFY_INFO",
    "UPDATE_TOP",   # pop: rewrite the newly exposed top's TTL
    "PUSH_OLD",     # push: restore the old top under the new entry
    "PUSH_NEW",     # push/swap: insert the new entry
    "DISCARD",
    "DONE",
]

#: Maximum nested LSP levels the architecture supports (three
#: information-base levels -> three stack entries).
MAX_LEVELS = 3


class LabelStackInterfaceFSM(FSM):
    """Figure 9, plus the result/handshake cycles that give the Table 6
    cycle counts."""

    def __init__(
        self,
        sim: Simulator,
        dp: Datapath,
        search: SearchFSM,
        name: str = "lbl_iface",
    ) -> None:
        super().__init__(sim, name, STATES)
        self.dp = dp
        self.search = search
        #: Driven by the main FSM (``enablelblint``).
        self.enable = self.wire("enable", 1)
        #: "Last active cycle" indication (``lblstckready``).
        self.finishing = self.wire("finishing", 1)
        #: Registered done pulse (``donelblupdt``).
        self.done = self.reg("done", 1)
        #: Registered discard pulse (``pktdcrd``).
        self.discard = self.reg("discard", 1)
        #: Whether the stack was empty when the update began (the LER
        #: ingress case, where the packet identifier keys level 1).
        self.was_empty = self.reg("was_empty", 1)
        #: Stack depth at the start of the update (for overflow checks).
        self.orig_size = self.reg("orig_size", 4)
        #: The operation the update actually performed (a LabelOp code),
        #: plus a validity flag.
        self.performed = self.reg("performed", 2)
        self.performed_valid = self.reg("performed_valid", 1)

    # -- search request (the update path's key/level selection) -----------
    def _drive_search_request(self) -> None:
        """Level and key come from the stack when it is non-empty (an
        LSR or a nested LER level), or from the packet identifier at
        level 1 when it is empty (LER ingress) -- the paper's
        ``level_source`` / ``indexsource`` muxes."""
        self.search.req.drive(1)
        size = self.dp.stack.size.value
        if size == 0:
            self.search.req_level.drive(1)
            self.search.req_key.drive(self.dp.lat_packet_id.value)
        else:
            label, _cos, _s, _ttl = entry_fields(self.dp.stack.top.value)
            self.search.req_level.drive(min(size, MAX_LEVELS))
            self.search.req_key.drive(label)

    # -- outputs per state ------------------------------------------------
    def output(self) -> None:
        state = self.state_name
        dp = self.dp
        self.finishing.drive(
            1
            if state in ("USER_PUSH", "USER_POP", "DONE", "DISCARD")
            else 0
        )
        if state == "USER_PUSH":
            dp.stack.op.drive(StackOp.PUSH)
            dp.stack.data_in.drive(dp.lat_entry_word)
        elif state == "USER_POP":
            dp.stack.op.drive(StackOp.POP)
        elif state == "SEARCH_ENABLE":
            self._drive_search_request()
        elif state == "REMOVE_TOP":
            size = dp.stack.size.value
            if size > 0:
                # pop the entry being modified into the entry register
                # and load its TTL into the TTL counter (``ttlsource`` =
                # stack entry)
                dp.stack.op.drive(StackOp.POP)
                dp.entry_reg.en.drive(1)
                dp.entry_reg.d.drive(dp.stack.top.value)
                _label, _cos, _s, ttl = entry_fields(dp.stack.top.value)
                dp.ttl_counter.load.drive(1)
                dp.ttl_counter.load_value.drive(ttl)
            else:
                # LER ingress: no entry to remove; the TTL and CoS come
                # from the control path (``ttlsource``/``cosbitssrc`` =
                # control path)
                dp.entry_reg.en.drive(1)
                dp.entry_reg.d.drive(
                    make_entry(0, dp.lat_cos.value, 0, dp.lat_ttl.value)
                )
                dp.ttl_counter.load.drive(1)
                dp.ttl_counter.load_value.drive(dp.lat_ttl.value)
        elif state == "UPDATE_TTL":
            dp.ttl_counter.en.drive(1)
            dp.ttl_counter.down.drive(1)
        elif state == "UPDATE_TOP":
            if dp.stack.size.value > 0:
                # rewrite the newly exposed top with the decremented TTL
                word = dp.stack.top.value
                dp.stack.op.drive(StackOp.WRITE_TOP)
                dp.stack.data_in.drive(
                    (word & ~0xFF) | dp.ttl_counter.count.value
                )
        elif state == "PUSH_OLD":
            # restore the old entry beneath the new one, TTL updated
            word = dp.entry_reg.q.value
            dp.stack.op.drive(StackOp.PUSH)
            dp.stack.data_in.drive(
                (word & ~0xFF) | dp.ttl_counter.count.value
            )
        elif state == "PUSH_NEW":
            # the new entry: label from the information base
            # (``newlblsrc`` = memory), CoS preserved from the entry
            # register, TTL from the counter, S bit computed from the
            # current stack occupancy
            _label, cos, _s, _ttl = entry_fields(dp.entry_reg.q.value)
            s_bit = 1 if dp.stack.size.value == 0 else 0
            dp.stack.op.drive(StackOp.PUSH)
            dp.stack.data_in.drive(
                make_entry(
                    self.search.label_out.value,
                    cos,
                    s_bit,
                    dp.ttl_counter.count.value,
                )
            )
        elif state == "DISCARD":
            # "the label stack is reset"
            dp.stack.op.drive(StackOp.CLEAR)

    # -- verification -------------------------------------------------------
    def _verify_fails(self) -> bool:
        """The VERIFY INFO checks: expired TTL or an inconsistent
        stored operation discard the packet."""
        dp = self.dp
        _label, _cos, _s, old_ttl = entry_fields(dp.entry_reg.q.value)
        op = self.search.op_out.value
        if old_ttl == 0 or dp.ttl_counter.count.value == 0:
            return True  # TTL expired
        if op == LabelOp.NOOP:
            return True  # no stored operation: inconsistent
        if self.was_empty.value and op != LabelOp.PUSH:
            return True  # only a push can act on an empty stack
        if self.was_empty.value and dp.rtrtype.value == 1:
            return True  # a core LSR must never see an empty stack
        if op == LabelOp.PUSH and self.orig_size.value >= MAX_LEVELS:
            return True  # deeper than the supported levels
        return False

    # -- transitions -------------------------------------------------------
    def transition(self) -> State:
        state = self.state_name
        if state == "IDLE":
            self.done.stage(0)
            self.discard.stage(0)
            if self.enable.value:
                op = self.dp.lat_op.value
                if op == UserOp.USER_PUSH:
                    return self.s("USER_PUSH")
                if op == UserOp.USER_POP:
                    return self.s("USER_POP")
                if op == UserOp.UPDATE:
                    self.performed_valid.stage(0)
                    return self.s("SEARCH_ENABLE")
            return self.s("IDLE")

        if state in ("USER_PUSH", "USER_POP"):
            self.done.stage(1)
            return self.s("IDLE")

        if state == "SEARCH_ENABLE":
            if self.search.finishing.value:
                return self.s("GET_RESULT")
            return self.s("SEARCH_ENABLE")

        if state == "GET_RESULT":
            self.was_empty.stage(1 if self.dp.stack.size.value == 0 else 0)
            self.orig_size.stage(self.dp.stack.size.value)
            if self.search.found.value:
                return self.s("REMOVE_TOP")
            return self.s("DISCARD")

        if state == "REMOVE_TOP":
            return self.s("UPDATE_TTL")

        if state == "UPDATE_TTL":
            return self.s("VERIFY_INFO")

        if state == "VERIFY_INFO":
            if self._verify_fails():
                return self.s("DISCARD")
            op = self.search.op_out.value
            self.performed.stage(op)
            self.performed_valid.stage(1)
            if op == LabelOp.POP:
                return self.s("UPDATE_TOP")
            if op == LabelOp.PUSH and not self.was_empty.value:
                return self.s("PUSH_OLD")
            return self.s("PUSH_NEW")  # swap, or push onto empty stack

        if state == "UPDATE_TOP":
            return self.s("DONE")

        if state == "PUSH_OLD":
            return self.s("PUSH_NEW")

        if state == "PUSH_NEW":
            return self.s("DONE")

        if state == "DISCARD":
            self.done.stage(1)
            self.discard.stage(1)
            return self.s("IDLE")

        # DONE
        self.done.stage(1)
        return self.s("IDLE")
