"""The information base (paper Figures 12 and 13).

Label pairs are stored per stack level.  Each level owns three memory
components (Figure 13):

* an **index** component -- the lookup key.  Level 1 is keyed by the
  32-bit packet identifier; levels 2 and 3 are keyed by a 20-bit label
  ("the packet identifier is 32 bits while a label is 20 bits so the
  memory for level 1 must have different index memory than levels 2
  and 3"),
* a **label** component (20 bits) -- the new label value,
* an **operation** component (2 bits) -- push / pop / swap / no-op.

Each component holds 1 K entries ("Each memory component supports 1 KB
of label pairs").  Counters address the memories: the write counter
doubles as the count of stored pairs (the paper's ``w_index``), and the
read counter steps through entries during a search (``r_index``).

Writes append at ``w_index``; a write to a full level is dropped and a
sticky ``overflow`` flag is raised.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.hdl.counter import Counter
from repro.hdl.memory import SyncMemory
from repro.hdl.simulator import Component, Simulator

#: Entries per level ("1 KB long" in Figure 13).
LEVEL_DEPTH = 1024

#: Index widths per level (packet identifier vs label).
LEVEL1_INDEX_WIDTH = 32
LABEL_INDEX_WIDTH = 20

LABEL_WIDTH = 20
OP_WIDTH = 2


class InfoBaseLevel(Component):
    """One level of the information base: index + label + op memories
    and the read/write address counters."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        index_width: int,
        depth: int = LEVEL_DEPTH,
    ) -> None:
        super().__init__(sim, name)
        self.depth = depth
        self.index_width = index_width
        self.index_mem = SyncMemory(sim, f"{name}.index", depth, index_width)
        self.label_mem = SyncMemory(sim, f"{name}.label", depth, LABEL_WIDTH)
        self.op_mem = SyncMemory(sim, f"{name}.op", depth, OP_WIDTH)
        # Write counter: the paper's w_index.  Width +1 so the count can
        # reach the full depth.
        self.write_counter = Counter(
            sim, f"{name}.w_index", width=depth.bit_length()
        )
        # Read counter: the paper's r_index.
        self.read_counter = Counter(
            sim, f"{name}.r_index", width=depth.bit_length()
        )
        # Inputs, driven by the control unit.
        self.wr_en = self.wire("wr_en", 1)
        self.wr_index = self.wire("wr_index", index_width)
        self.wr_label = self.wire("wr_label", LABEL_WIDTH)
        self.wr_op = self.wire("wr_op", OP_WIDTH)
        # Management extensions ("Entries can be added, modified, or
        # removed from the information base"): when ``wr_addr_override``
        # is high the write lands at ``wr_addr_ext`` instead of
        # appending at w_index, and the write counter does not
        # increment (an in-place modify).  ``count_dec`` decrements the
        # write counter (entry removal).
        self.wr_addr_override = self.wire("wr_addr_override", 1)
        self.wr_addr_ext = self.wire("wr_addr_ext", depth.bit_length())
        self.count_dec = self.wire("count_dec", 1)
        # Direct read path ("a search index when the user wants to read
        # the contents of the information base directly"): overrides
        # the read counter as the read address.
        self.rd_addr_override = self.wire("rd_addr_override", 1)
        self.rd_addr_ext = self.wire("rd_addr_ext", depth.bit_length())
        # Sticky overflow flag.
        self.overflow = self.reg("overflow", 1)

    @property
    def count(self) -> int:
        """Number of stored pairs (the write counter's value)."""
        return self.write_counter.count.value

    def settle(self) -> None:
        override = bool(self.wr_addr_override.value)
        full = self.count >= self.depth
        appending = bool(self.wr_en.value) and not override
        if appending and full:
            self.overflow.stage(1)
            appending = False
        writing = appending or (bool(self.wr_en.value) and override)
        # Route the write to all three memory components: appends land
        # at w_index, in-place modifications at the external address.
        self.index_mem.wr_en.drive(1 if writing else 0)
        self.label_mem.wr_en.drive(1 if writing else 0)
        self.op_mem.wr_en.drive(1 if writing else 0)
        if writing:
            addr = (
                min(self.wr_addr_ext.value, self.depth - 1)
                if override
                else self.count
            )
            self.index_mem.wr_addr.drive(addr)
            self.index_mem.wr_data.drive(self.wr_index.value)
            self.label_mem.wr_addr.drive(addr)
            self.label_mem.wr_data.drive(self.wr_label.value)
            self.op_mem.wr_addr.drive(addr)
            self.op_mem.wr_data.drive(self.wr_op.value)
        # The write counter increments alongside a successful append
        # and decrements on removal; modify leaves it unchanged.
        if self.count_dec.value and self.count > 0:
            self.write_counter.en.drive(1)
            self.write_counter.down.drive(1)
        else:
            self.write_counter.en.drive(1 if appending else 0)
        # The read counter (r_index) is the shared read address of the
        # three components, as in Figure 13 -- unless the management
        # path overrides it for a direct read.
        if self.rd_addr_override.value:
            addr = min(self.rd_addr_ext.value, self.depth - 1)
        else:
            addr = min(self.read_counter.count.value, self.depth - 1)
        self.index_mem.rd_addr.drive(addr)
        self.label_mem.rd_addr.drive(addr)
        self.op_mem.rd_addr.drive(addr)

    # -- registered read outputs (1-cycle latency) ----------------------------
    @property
    def rd_index(self) -> int:
        return self.index_mem.rd_data.value

    @property
    def rd_label(self) -> int:
        return self.label_mem.rd_data.value

    @property
    def rd_op(self) -> int:
        return self.op_mem.rd_data.value

    def load_pairs(self, pairs: List[Tuple[int, int, int]]) -> None:
        """Bulk-load the level with (index, label, op) triples.

        The double-buffered bank-swap path: the driver assembled the
        pairs in a shadow bank and flips them in wholesale -- memories
        are written through the backdoor port and the write counter is
        parallel-loaded, all within the single swap cycle.  Loading
        beyond the memory depth truncates and raises the sticky
        overflow flag, as an append past the end would.
        """
        if len(pairs) > self.depth:
            pairs = pairs[: self.depth]
            self.overflow.force(1)
        for address, (index, label, op) in enumerate(pairs):
            self.index_mem.poke(address, index)
            self.label_mem.poke(address, label)
            self.op_mem.poke(address, op)
        self.write_counter.count.force(len(pairs))

    # -- test/debug backdoor ------------------------------------------------
    def dump_pairs(self) -> List[Tuple[int, int, int]]:
        """(index, label, op) triples for the stored pairs."""
        return [
            (
                self.index_mem.peek(i),
                self.label_mem.peek(i),
                self.op_mem.peek(i),
            )
            for i in range(self.count)
        ]


class InfoBase(Component):
    """The three-level information base.

    Level selection (the paper's ``level`` signal, values 1-3) routes
    writes and read addresses; read data is taken from the selected
    level by the control unit.
    """

    def __init__(self, sim: Simulator, name: str, depth: int = LEVEL_DEPTH) -> None:
        super().__init__(sim, name)
        self.depth = depth
        self.levels = (
            InfoBaseLevel(sim, f"{name}.l1", LEVEL1_INDEX_WIDTH, depth),
            InfoBaseLevel(sim, f"{name}.l2", LABEL_INDEX_WIDTH, depth),
            InfoBaseLevel(sim, f"{name}.l3", LABEL_INDEX_WIDTH, depth),
        )

    def level(self, number: int) -> InfoBaseLevel:
        """Level by its paper-facing number (1, 2 or 3)."""
        if number not in (1, 2, 3):
            raise ValueError(f"{self.name}: level must be 1..3, got {number}")
        return self.levels[number - 1]

    def counts(self) -> Tuple[int, int, int]:
        return tuple(level.count for level in self.levels)  # type: ignore[return-value]

    @property
    def any_overflow(self) -> bool:
        return any(level.overflow.value for level in self.levels)
