"""The search state machine (paper Figure 11).

Iterates the read counter of the selected information-base level
through the stored label pairs, comparing each index against the search
key with the datapath comparators.  The search costs exactly three
cycles per entry examined (present address / wait for the registered
read / compare), plus fixed overhead -- giving the ``3n + 5`` worst
case of Table 6 once the enable handshake is included.

Interface:

* request inputs (held by the enabling state machine until the search
  finishes): ``req``, ``req_level`` (1-3), ``req_key`` (32 bits; only
  the low 20 matter for levels 2-3);
* registered outputs: ``found``, ``label_out``, ``op_out`` (valid once
  ``done`` pulses and until the next search), ``done`` (the paper's
  ``lookup_done`` / ``searchdone`` one-cycle pulse), ``miss`` (pulse
  aligned with ``done`` when nothing matched -- feeding the
  ``packetdiscard`` output of Figure 16);
* the Moore output ``finishing`` (the last active cycle), which lets
  the enabling FSM retire on the same edge.
"""

from __future__ import annotations

from repro.hdl.fsm import FSM, State
from repro.hdl.simulator import Simulator
from repro.hw.datapath import Datapath

STATES = [
    "IDLE",
    "BEGIN",       # clear r_index, latch the key and level
    "READ",        # present the read address ("READ INFO BASE")
    "WAIT",        # registered read completes ("WAIT FOR READ VALUE")
    "COMPARE",     # compare index against the key ("COMPARE VALUES")
    "FOUND",       # delay so the values can appear ("WAIT FOR INFO")
    "MISS",        # exhausted without a match
]


class SearchFSM(FSM):
    """Figure 11, with the 3-cycles-per-entry read loop."""

    def __init__(self, sim: Simulator, dp: Datapath, name: str = "search") -> None:
        super().__init__(sim, name, STATES)
        self.dp = dp
        # request interface
        self.req = self.wire("req", 1)
        self.req_level = self.wire("req_level", 2)
        self.req_key = self.wire("req_key", 32)
        # latched request
        self.key = self.reg("key", 32)
        self.level_num = self.reg("level_num", 2, default=1)
        # outputs
        self.found = self.reg("found", 1)
        self.label_out = self.reg("label_out", 20)
        self.op_out = self.reg("op_out", 2)
        self.done = self.reg("done", 1)
        self.miss = self.reg("miss", 1)
        self.finishing = self.wire("finishing", 1)

    # -- helpers --------------------------------------------------------
    def _level(self):
        num = self.level_num.value
        return self.dp.info_base.level(num if num in (1, 2, 3) else 1)

    def output(self) -> None:
        self.finishing.drive(
            1 if self.in_state("FOUND") or self.in_state("MISS") else 0
        )
        state = self.state_name
        if state == "BEGIN":
            # models the index-source mux selecting the search key and
            # the read counter's synchronous clear
            self._level().read_counter.clear.drive(1)
        elif state == "COMPARE":
            level = self._level()
            # key comparison through the datapath comparators: the
            # 32-bit comparator for packet identifiers (level 1), the
            # 20-bit comparator for labels (levels 2-3)
            if self.level_num.value == 1:
                self.dp.cmp32.a.drive(self.key.value)
                self.dp.cmp32.b.drive(level.rd_index)
            else:
                self.dp.cmp20.a.drive(self.key.value & 0xFFFFF)
                self.dp.cmp20.b.drive(level.rd_index)
            # exhaustion test on the 10-bit index comparator:
            # r_index == w_index - 1 means this was the last stored pair
            self.dp.cmp10.a.drive(level.read_counter.count.value)
            self.dp.cmp10.b.drive(max(0, level.count - 1))

    def transition(self) -> State:
        state = self.state_name
        if state == "IDLE":
            if self.req.value:
                self.key.stage(self.req_key.value)
                self.level_num.stage(
                    self.req_level.value if self.req_level.value in (1, 2, 3) else 1
                )
                self.done.stage(0)
                self.miss.stage(0)
                self.found.stage(0)
                return self.s("BEGIN")
            self.done.stage(0)
            self.miss.stage(0)
            return self.s("IDLE")

        if state == "BEGIN":
            if self._level().count == 0:
                return self.s("MISS")
            return self.s("READ")

        if state == "READ":
            # the level presents r_index to its memories every cycle;
            # nothing to drive beyond waiting for the registered read
            return self.s("WAIT")

        if state == "WAIT":
            return self.s("COMPARE")

        if state == "COMPARE":
            level = self._level()
            matched = (
                self.dp.cmp32.eq.value
                if self.level_num.value == 1
                else self.dp.cmp20.eq.value
            )
            if matched:
                self.found.stage(1)
                self.label_out.stage(level.rd_label)
                self.op_out.stage(level.rd_op)
                return self.s("FOUND")
            if self.dp.cmp10.eq.value:
                self.found.stage(0)
                return self.s("MISS")
            level.read_counter.en.drive(1)
            return self.s("READ")

        if state == "FOUND":
            self.done.stage(1)
            return self.s("IDLE")

        # MISS
        self.done.stage(1)
        self.miss.stage(1)
        return self.s("IDLE")
