"""The information-base interface state machine (paper Figure 10),
extended with the management operations the paper names.

Enabled by the main FSM for everything that touches the information
base directly:

* ``WRITE PAIR`` -- append a label pair ("Writing a label pair to the
  information base is done through direct manipulation of the data
  path"),
* ``SEARCH ENABLE`` -- delegate a lookup to the search machine,
* ``MODIFY_PAIR`` -- search for an index, then rewrite its label and
  operation in place,
* ``REMOVE_PAIR`` -- search for an index, then delete the pair by
  copying the last stored pair into the hole and decrementing the
  write counter (constant work after the search, preserving the dense
  array the linear search depends on),
* ``READ_ENTRY`` -- read the pair at a caller-supplied address
  directly (the paper's "search index when the user wants to read the
  contents of the information base directly").

Measured cycle costs beyond the paper's Table 6 (asserted in tests):
modify = search + 2, remove = search + 4, miss on either = full scan
+ 1, direct read = 5 fixed.
"""

from __future__ import annotations

from repro.hdl.fsm import FSM, State
from repro.hdl.simulator import Simulator
from repro.hw.datapath import Datapath
from repro.hw.opcodes import UserOp
from repro.hw.search_fsm import SearchFSM

STATES = [
    "IDLE",
    "WRITE_PAIR",
    "SEARCH",
    "SEARCH_MODIFY",
    "MOD_WRITE",
    "SEARCH_REMOVE",
    "RM_READ_LAST",
    "RM_WAIT",
    "RM_WRITE",
    "READ_ADDR",
    "READ_WAIT",
    "MGMT_DONE",
]


class InfoBaseInterfaceFSM(FSM):
    """Figure 10 plus the add/modify/remove/read management path."""

    def __init__(
        self,
        sim: Simulator,
        dp: Datapath,
        search: SearchFSM,
        name: str = "ib_iface",
    ) -> None:
        super().__init__(sim, name, STATES)
        self.dp = dp
        self.search = search
        #: Driven by the main FSM (the paper's ``enableibint``).
        self.enable = self.wire("enable", 1)
        #: Moore/Mealy "last active cycle" indication (``ibready``).
        self.finishing = self.wire("finishing", 1)
        #: Registered done pulse (``dnibupdate``).
        self.done = self.reg("done", 1)
        # -- management results ------------------------------------------
        #: The found/valid flag of the last management operation.
        self.mgmt_found = self.reg("mgmt_found", 1)
        #: Address the search hit (captured for the write-back).
        self.mgmt_addr = self.reg("mgmt_addr", 11)
        #: Direct-read outputs.
        self.rd_out_index = self.reg("rd_out_index", 32)
        self.rd_out_label = self.reg("rd_out_label", 20)
        self.rd_out_op = self.reg("rd_out_op", 2)

    # -- helpers --------------------------------------------------------
    def _level(self):
        num = self.dp.lat_level.value
        return self.dp.info_base.level(num if num in (1, 2, 3) else 1)

    def _search_key(self) -> int:
        if self.dp.lat_level.value == 1:
            return self.dp.lat_packet_id.value
        return self.dp.lat_label_lookup.value

    def _drive_search(self) -> None:
        self.search.req.drive(1)
        self.search.req_level.drive(self.dp.lat_level.value)
        self.search.req_key.drive(self._search_key())

    def _read_addr(self) -> int:
        """The direct-read address: low bits of the data input."""
        level = self._level()
        return min(
            self.dp.lat_data.value & ((1 << 11) - 1), level.depth - 1
        )

    def output(self) -> None:
        state = self.state_name
        dp = self.dp
        if state in ("WRITE_PAIR", "MGMT_DONE"):
            self.finishing.drive(1)
        elif state == "SEARCH":
            # retire on the same edge the search machine does
            self.finishing.drive(self.search.finishing.value)
        else:
            self.finishing.drive(0)
        if state == "WRITE_PAIR":
            level_num = dp.lat_level.value
            level = self._level()
            level.wr_en.drive(1)
            if level_num == 1:
                # level 1 is keyed by the 32-bit packet identifier
                level.wr_index.drive(dp.lat_packet_id.value)
            else:
                # levels 2-3 take the index half of the 40-bit pair
                level.wr_index.drive(dp.lat_pair_index)
            level.wr_label.drive(dp.lat_pair_label)
            level.wr_op.drive(dp.lat_op_in.value)
        elif state == "SEARCH":
            self._drive_search()
        elif state in ("SEARCH_MODIFY", "SEARCH_REMOVE"):
            self._drive_search()
        elif state == "MOD_WRITE":
            level = self._level()
            level.wr_en.drive(1)
            level.wr_addr_override.drive(1)
            level.wr_addr_ext.drive(self.mgmt_addr.value)
            if dp.lat_level.value == 1:
                level.wr_index.drive(dp.lat_packet_id.value)
            else:
                level.wr_index.drive(dp.lat_pair_index)
            level.wr_label.drive(dp.lat_pair_label)
            level.wr_op.drive(dp.lat_op_in.value)
        elif state in ("RM_READ_LAST", "RM_WAIT"):
            # present the last stored pair's address; its registered
            # read is valid from RM_WAIT onward
            level = self._level()
            level.rd_addr_override.drive(1)
            level.rd_addr_ext.drive(max(0, level.count - 1))
        elif state == "RM_WRITE":
            # copy the last pair into the hole and shrink the count
            level = self._level()
            level.wr_en.drive(1)
            level.wr_addr_override.drive(1)
            level.wr_addr_ext.drive(self.mgmt_addr.value)
            level.wr_index.drive(level.rd_index)
            level.wr_label.drive(level.rd_label)
            level.wr_op.drive(level.rd_op)
            level.count_dec.drive(1)
        elif state in ("READ_ADDR", "READ_WAIT"):
            level = self._level()
            level.rd_addr_override.drive(1)
            level.rd_addr_ext.drive(self._read_addr())

    def transition(self) -> State:
        state = self.state_name
        if state == "IDLE":
            self.done.stage(0)
            if self.enable.value:
                op = self.dp.lat_op.value
                if op == UserOp.WRITE_PAIR:
                    return self.s("WRITE_PAIR")
                if op == UserOp.SEARCH:
                    return self.s("SEARCH")
                if op == UserOp.MODIFY_PAIR:
                    return self.s("SEARCH_MODIFY")
                if op == UserOp.REMOVE_PAIR:
                    return self.s("SEARCH_REMOVE")
                if op == UserOp.READ_ENTRY:
                    return self.s("READ_ADDR")
            return self.s("IDLE")

        if state == "WRITE_PAIR":
            self.done.stage(1)
            return self.s("IDLE")

        if state == "SEARCH":
            # the search machine's done pulse is the transaction's done
            if self.search.finishing.value:
                return self.s("IDLE")
            return self.s("SEARCH")

        if state == "SEARCH_MODIFY":
            if self.search.finishing.value:
                if self.search.found.value:
                    self.mgmt_found.stage(1)
                    self.mgmt_addr.stage(
                        self._level().read_counter.count.value
                    )
                    return self.s("MOD_WRITE")
                self.mgmt_found.stage(0)
                return self.s("MGMT_DONE")
            return self.s("SEARCH_MODIFY")

        if state == "MOD_WRITE":
            return self.s("MGMT_DONE")

        if state == "SEARCH_REMOVE":
            if self.search.finishing.value:
                if self.search.found.value:
                    self.mgmt_found.stage(1)
                    self.mgmt_addr.stage(
                        self._level().read_counter.count.value
                    )
                    return self.s("RM_READ_LAST")
                self.mgmt_found.stage(0)
                return self.s("MGMT_DONE")
            return self.s("SEARCH_REMOVE")

        if state == "RM_READ_LAST":
            return self.s("RM_WAIT")
        if state == "RM_WAIT":
            return self.s("RM_WRITE")
        if state == "RM_WRITE":
            return self.s("MGMT_DONE")

        if state == "READ_ADDR":
            self.mgmt_found.stage(
                1 if self._read_addr() < self._level().count else 0
            )
            return self.s("READ_WAIT")
        if state == "READ_WAIT":
            level = self._level()
            self.rd_out_index.stage(level.rd_index)
            self.rd_out_label.stage(level.rd_label)
            self.rd_out_op.stage(level.rd_op)
            return self.s("MGMT_DONE")

        # MGMT_DONE
        self.done.stage(1)
        return self.s("IDLE")
