"""Operation encodings and transaction result records.

The user-facing operation alphabet corresponds to the paper's
``extoperation`` signal ("Indicates the desired operation from the
user", Tables 1-2); the stack micro-operations are the ``stckctrl``
encoding of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional, Tuple

from repro.mpls.label import LabelEntry, LabelOp


class UserOp(IntEnum):
    """The ``extoperation`` input: what the user asks the modifier to do.

    Operations 6-8 are the management extensions the paper names but
    does not detail ("Entries can be added, modified, or removed from
    the information base" and the direct read path of its datapath
    description).
    """

    NONE = 0
    USER_PUSH = 1    # push a stack entry supplied on data_in
    USER_POP = 2     # pop the top stack entry
    WRITE_PAIR = 3   # store a label pair + operation in the info base
    SEARCH = 4       # look up a label pair (read path of Figs 14-16)
    UPDATE = 5       # full update: search + verify + push/swap/pop
    MODIFY_PAIR = 6  # rewrite an existing pair's label/operation in place
    REMOVE_PAIR = 7  # delete a pair (last entry fills the hole)
    READ_ENTRY = 8   # read the pair stored at a given address directly


class StackOp(IntEnum):
    """The stack control micro-operations (``stckctrl``/``lblop``)."""

    HOLD = 0
    PUSH = 1
    POP = 2
    CLEAR = 3
    WRITE_TOP = 4  # rewrite the top entry in place (pop's TTL fix-up)


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a SEARCH transaction (Figures 14-16).

    ``cycles`` is the exact clock-cycle count from command issue to the
    registered ``lookup_done`` pulse.
    """

    found: bool
    label: Optional[int]
    op: Optional[LabelOp]
    discarded: bool
    cycles: int


@dataclass(frozen=True)
class MgmtResult:
    """Outcome of a MODIFY_PAIR / REMOVE_PAIR transaction."""

    found: bool
    cycles: int


@dataclass(frozen=True)
class ReadEntryResult:
    """Outcome of a READ_ENTRY transaction (direct memory read)."""

    valid: bool
    index: Optional[int]
    label: Optional[int]
    op: Optional[LabelOp]
    cycles: int


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of an UPDATE transaction (the Figure 9 flow).

    ``search_cycles`` is the portion of ``cycles`` spent in the SEARCH
    sub-flow (the Figures 14-16 lookup); the remainder is the
    verify/modify tail.  The functional model fills it in for span
    tracing; None means the split was not measured.
    """

    performed: Optional[LabelOp]
    discarded: bool
    cycles: int
    stack: Tuple[LabelEntry, ...]
    search_cycles: Optional[int] = None
