"""A network node whose data plane runs on the label stack modifier.

:class:`HardwareLSRNode` is a drop-in replacement for
:class:`~repro.mpls.router.LSRNode` inside an
:class:`~repro.net.network.MPLSNetwork`: the control plane programs the
same ILM/FTN tables, but every packet is forwarded by the hardware
model (the :class:`~repro.hw.model.FunctionalModifier`, equivalent to
the RTL by property test), with exact clock-cycle accounting per
packet.

Two hardware/software co-design mechanisms, both in the spirit of the
paper's hybrid premise:

* **table mirroring** -- when the ILM generation changes, the node
  reprograms the information base through the hardware's write port
  (3 cycles per pair, counted as control cycles).  ILM entries are
  mirrored into all three levels because a label can appear at any
  stack depth once tunnels nest.
* **level-1 flow cache** -- the hardware's level 1 is keyed by exact
  packet identifiers (destination addresses), but ingress
  classification is by prefix.  A destination's first packet therefore
  misses in hardware, takes the software FTN slow path, and installs
  its (destination -> label) pair in level 1; subsequent packets to
  that destination are label-switched entirely in hardware.  The
  node counts slow-path events so benchmarks can show the cache
  working.

Known, documented semantic difference from the software engine: on a
pop that exposes a lower stack entry, the hardware writes the
decremented outer TTL into the exposed entry unconditionally (the
paper's UPDATE_TOP), while the software engine takes the minimum with
the exposed entry's own TTL.  Under the uniform TTL model both values
coincide, since nested entries are created with equal TTLs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.core.device import STRATIX_EP1S40
from repro.hw.model import (
    FunctionalModifier,
    ScrubReport,
    StagingBackpressure,
)
from repro.mpls.forwarding import (
    Action,
    ForwardingDecision,
    _dscp_to_cos,
)
from repro.mpls.label import LabelOp
from repro.mpls.router import LSRNode, RouterRole
from repro.mpls.stack import LabelStack
from repro.net.packet import IPv4Packet, MPLSPacket
from repro.obs.events import (
    HWOpExecuted,
    InfoBaseProgrammed,
    InfoBaseScrubbed,
)
from repro.obs.telemetry import get_telemetry


@dataclass(frozen=True)
class _HwMemoEntry:
    """One memoized hardware forwarding outcome.

    Valid only while the (ilm generation, ftn generation, modifier
    state_version) triple under which it was filled still holds: the
    hardware's search cycle counts depend on pair *positions*, so any
    information-base write invalidates every entry at once.
    """

    action: Action
    reason: Optional[str]
    next_hop: Optional[str]
    out_interface: Optional[str]
    #: output label stack for FORWARD_MPLS results, else None
    stack: Optional[LabelStack]
    #: computed inner TTL for MPLS->IP (pop-to-empty) results
    inner_ttl: Optional[int]
    #: counter deltas the real pass produced, replayed verbatim
    data_cycles: int
    fast_path: int
    slow_path: int


class HardwareLSRNode(LSRNode):
    """An LSR/LER whose label operations run on the hardware model."""

    def __init__(
        self,
        name: str,
        role: RouterRole = RouterRole.LSR,
        interfaces=None,
        ib_depth: int = 1024,
        staging_limit: Optional[int] = None,
    ) -> None:
        super().__init__(name, role, interfaces)
        self.modifier = FunctionalModifier(
            ib_depth=ib_depth, staging_limit=staging_limit
        )
        self.modifier.set_router_type(role is RouterRole.LSR)
        #: times the bounded bank-write queue pushed back during
        #: info-base programming (see StagingBackpressure)
        self.backpressure_stalls = 0
        self._mirrored_ilm_generation = -1
        #: destination (int) -> label cached at level 1, in LRU order
        #: (oldest first); bounded by the information base depth, with
        #: hardware remove_pair evicting the LRU entry when full
        self._flow_cache: "OrderedDict[int, int]" = OrderedDict()
        #: level-1 slots not consumed by mirrored ILM entries
        self._flow_cache_capacity = ib_depth
        # -- accounting ----------------------------------------------------
        self.hw_data_cycles = 0
        self.hw_control_cycles = 0
        self.slow_path_packets = 0
        self.fast_path_packets = 0
        self.flow_cache_evictions = 0
        #: data cycles already published to telemetry (delta tracking)
        self._observed_data_cycles = 0
        #: per-packet phase capture for span tracing: a list of
        #: (phase, parent_phase, cycle_start, cycle_end) while the
        #: current packet is sampled, else None (the hot-path default)
        self._phase_log = None
        # -- batched fast path ---------------------------------------------
        #: flow-keyed memo of complete hardware forwarding outcomes,
        #: armed by :meth:`enable_batching`; None = scalar processing
        self._hw_memo: "Optional[OrderedDict[tuple, _HwMemoEntry]]" = None
        self._hw_memo_capacity = 0
        #: (ilm gen, ftn gen, modifier state_version) the memo was
        #: filled under; any mismatch flushes the whole memo
        self._hw_memo_valid: Optional[Tuple[int, int, int]] = None
        self.hw_memo_hits = 0
        self.hw_memo_misses = 0
        self.hw_memo_invalidations = 0

    # -- information-base synchronization ---------------------------------
    def _sync_info_base(self) -> None:
        """Reprogram the information base through the double-buffered
        bank path: the new table is assembled in the shadow bank (3
        cycles per pair, same write port as WRITE_PAIR) while packets
        keep hitting the active bank, then swapped in atomically in a
        single cycle.  No packet ever observes a half-programmed
        information base, and an exception mid-assembly leaves the
        active bank untouched (the shadow bank rolls back).
        """
        if self.ilm.generation == self._mirrored_ilm_generation:
            return
        self.modifier.bank_begin()
        cycles = 0
        try:
            for label, nhlfe in self.ilm:
                out_label = nhlfe.out_label
                op = nhlfe.op
                if op is LabelOp.POP:
                    stored_label, stored_op = 16, LabelOp.POP
                elif op in (LabelOp.SWAP, LabelOp.PUSH):
                    stored_label, stored_op = out_label, op
                else:
                    continue  # NOOP entries stay software-only
                # a label can arrive at any stack depth: mirror per level
                for level in (1, 2, 3):
                    try:
                        cycles += self.modifier.bank_write_pair(
                            level, label, stored_label, stored_op
                        )
                    except StagingBackpressure:
                        # bounded command queue full: the control plane
                        # yields until it drains, then retries the write
                        self.modifier.bank_drain()
                        self.backpressure_stalls += 1
                        cycles += self.modifier.bank_write_pair(
                            level, label, stored_label, stored_op
                        )
        except Exception:
            self.modifier.bank_rollback()
            raise
        cycles += self.modifier.bank_commit()
        self._flow_cache.clear()
        self.modifier.set_router_type(self.role is RouterRole.LSR)
        self._mirrored_ilm_generation = self.ilm.generation
        # whatever level 1 doesn't hold for the ILM is flow-cache space
        mirrored = self.modifier.ib_counts()[0]
        self._flow_cache_capacity = max(0, self.modifier.ib_depth - mirrored)
        self.hw_control_cycles += cycles
        tel = get_telemetry()
        if tel.enabled:
            entries = sum(self.modifier.ib_counts())
            tel.hw_cycles.labels(self.name, "control").inc(cycles)
            tel.info_base_writes.labels(self.name).inc(entries)
            tel.events.emit(
                InfoBaseProgrammed(
                    node=self.name,
                    entries=entries,
                    cycles=cycles,
                    reason=f"ilm generation {self.ilm.generation}",
                )
            )

    def _expected_pairs(self, level: int):
        """The shadow of what ``level`` should hold: the mirrored ILM
        entries (same traversal as :meth:`_sync_info_base`) plus, at
        level 1, the learned flow-cache pairs."""
        pairs = []
        for label, nhlfe in self.ilm:
            op = nhlfe.op
            if op is LabelOp.POP:
                pairs.append((label, 16, int(LabelOp.POP)))
            elif op in (LabelOp.SWAP, LabelOp.PUSH):
                pairs.append((label, nhlfe.out_label, int(op)))
        if level == 1:
            pairs.extend(
                (dst, cached, int(LabelOp.PUSH))
                for dst, cached in self._flow_cache.items()
            )
        return pairs

    def scrub_info_base(self) -> "list[ScrubReport]":
        """Run a VERIFY_INFO-style scrub over all three levels.

        Each level is read back through the management port and
        compared against the node's shadow (ILM mirror + flow cache);
        corrupted pairs are repaired in place.  Much cheaper than the
        full reset-and-reprogram of :meth:`_sync_info_base` when only a
        few pairs were hit, and the cycles are charged to the control
        plane either way.
        """
        self._sync_info_base()  # never scrub against a stale mirror
        reports = []
        cycles = 0
        for level in (1, 2, 3):
            report = self.modifier.scrub(
                level, self._expected_pairs(level)
            )
            reports.append(report)
            cycles += report.cycles
        self.hw_control_cycles += cycles
        tel = get_telemetry()
        if tel.enabled:
            repaired = sum(r.repaired for r in reports)
            if repaired:
                tel.scrub_repairs.labels(self.name).inc(repaired)
            tel.hw_cycles.labels(self.name, "control").inc(cycles)
            tel.events.emit(
                InfoBaseScrubbed(
                    node=self.name,
                    checked=sum(r.checked for r in reports),
                    corrupted=sum(r.corrupted for r in reports),
                    repaired=repaired,
                    cycles=cycles,
                )
            )
        return reports

    # -- batched fast path --------------------------------------------------
    def enable_batching(self, cache_capacity: Optional[int] = None):
        """Arm the hardware memo: repeat packets of a flow replay the
        memoized decision and cycle deltas instead of re-running the
        modifier (see the module docstring of
        :mod:`repro.mpls.fastpath` for the invalidation contract)."""
        from repro.mpls.fastpath import DEFAULT_CAPACITY

        self._hw_memo = OrderedDict()
        self._hw_memo_capacity = (
            cache_capacity if cache_capacity is not None else DEFAULT_CAPACITY
        )
        self._hw_memo_valid = None
        # the software FlowCache never applies here: the hardware node
        # forwards through the modifier, not the software engine
        self.flow_cache = None
        return None

    def disable_batching(self) -> None:
        self._hw_memo = None
        self.flow_cache = None

    def _forward(
        self,
        packet: Union[IPv4Packet, MPLSPacket],
        bypass_memo: bool = False,
    ) -> ForwardingDecision:
        """One packet through the hardware path, memo-aware.

        Memo entries are filled only from *pure* passes -- ones that
        did not write the information base (``state_version``
        unchanged) -- so a slow-path flow-cache install is never
        replayed with the wrong cycle count.
        """
        memo = self._hw_memo
        use_memo = memo is not None and not bypass_memo
        if use_memo:
            valid = (
                self.ilm.generation,
                self.ftn.generation,
                self.modifier.state_version,
            )
            if valid != self._hw_memo_valid:
                if memo:
                    self.hw_memo_invalidations += 1
                memo.clear()
                self._hw_memo_valid = valid
            else:
                from repro.mpls.fastpath import key_of

                cached = memo.get(key_of(packet))
                if cached is not None:
                    self.hw_memo_hits += 1
                    memo.move_to_end(key_of(packet))
                    return self._hw_replay(packet, cached)
            self.hw_memo_misses += 1
        before_version = self.modifier.state_version
        before_cycles = self.hw_data_cycles
        before_fast = self.fast_path_packets
        before_slow = self.slow_path_packets
        if isinstance(packet, MPLSPacket):
            decision = self._hw_transit(packet)
        elif self.is_edge:
            decision = self._hw_ingress(packet)
        else:
            decision = ForwardingDecision(
                Action.DISCARD,
                reason=f"{self.name}: unlabelled packet at a core LSR",
            )
        if use_memo and self.modifier.state_version == before_version:
            from repro.mpls.fastpath import key_of

            out = decision.packet
            memo[key_of(packet)] = _HwMemoEntry(
                action=decision.action,
                reason=decision.reason,
                next_hop=decision.next_hop,
                out_interface=decision.out_interface,
                stack=(
                    out.stack if isinstance(out, MPLSPacket) else None
                ),
                inner_ttl=(
                    out.ttl
                    if isinstance(packet, MPLSPacket)
                    and isinstance(out, IPv4Packet)
                    else None
                ),
                data_cycles=self.hw_data_cycles - before_cycles,
                fast_path=self.fast_path_packets - before_fast,
                slow_path=self.slow_path_packets - before_slow,
            )
            if len(memo) > self._hw_memo_capacity:
                memo.popitem(last=False)
        return decision

    def _hw_replay(
        self,
        packet: Union[IPv4Packet, MPLSPacket],
        cached: _HwMemoEntry,
    ) -> ForwardingDecision:
        """Re-apply a memoized outcome to a fresh packet: same counter
        deltas the real pass produced, output rebuilt around this
        packet's identity (uid, payload)."""
        self.hw_data_cycles += cached.data_cycles
        self.modifier.total_cycles += cached.data_cycles
        self.fast_path_packets += cached.fast_path
        self.slow_path_packets += cached.slow_path
        if cached.action is Action.DISCARD:
            out = None
        elif isinstance(packet, MPLSPacket):
            if cached.action is Action.FORWARD_MPLS:
                out = packet.with_stack(cached.stack)
            else:  # pop-to-empty: FORWARD_IP with the computed TTL
                out = packet.inner.with_ttl(cached.inner_ttl)
        else:
            # the scalar ingress fast path touches its LRU entry; the
            # replay must too, or evictions would diverge
            dst = packet.identifier()
            if dst in self._flow_cache:
                self._flow_cache.move_to_end(dst)
            if cached.action is Action.FORWARD_MPLS:
                out = MPLSPacket(cached.stack, packet.decremented())
            else:  # non-PUSH NHLFE: unlabelled forwarding
                out = packet.decremented()
        return ForwardingDecision(
            cached.action,
            packet=out,
            next_hop=cached.next_hop,
            out_interface=cached.out_interface,
            reason=cached.reason,
        )

    def receive_aggregate(self, aggregate) -> ForwardingDecision:
        """Process a whole packet train: the first packet runs (or
        fills) the memo, the rest replay it in O(1) each."""
        if self._hw_memo is None:
            raise RuntimeError(
                f"{self.name}: aggregates need batching enabled"
            )
        count = aggregate.count
        template = aggregate.template
        self.stats.received += count
        self._sync_info_base()
        self._phase_log = None
        decision = self._forward(template)
        for _ in range(count - 1):
            self._forward(template)
        decision = self._fill_interface(decision)
        self.stats.record(decision, count)
        tel = get_telemetry()
        if tel.enabled:
            cycles_after = self.hw_data_cycles
            delta = cycles_after - self._observed_data_cycles
            self._observed_data_cycles = cycles_after
            inner = (
                template.inner
                if isinstance(template, MPLSPacket)
                else template
            )
            if delta:
                tel.hw_cycles.labels(self.name, "data").inc(delta)
                tel.hw_packet_cycles.labels(self.name).observe(delta)
                if tel.flows is not None:
                    tel.flows.record_hw_cycles(
                        self.name, inner.flow_id, delta
                    )
        self.observe_aggregate(aggregate, decision)
        return decision

    def hw_memo_stats(self) -> dict:
        return {
            "entries": len(self._hw_memo) if self._hw_memo else 0,
            "hits": self.hw_memo_hits,
            "misses": self.hw_memo_misses,
            "invalidations": self.hw_memo_invalidations,
        }

    # -- the hardware data path ---------------------------------------------
    def receive(
        self, packet: Union[IPv4Packet, MPLSPacket]
    ) -> ForwardingDecision:
        self.stats.received += 1
        self._sync_info_base()
        # span capture is decided head-of-packet: one global lookup and
        # one boolean when telemetry is off (the hot-path contract;
        # benchmarks/test_bench_obs_overhead.py counts the reads)
        tel = get_telemetry()
        tel_enabled = tel.enabled
        inner = packet.inner if isinstance(packet, MPLSPacket) else packet
        capture = (
            tel_enabled
            and tel.spans is not None
            and tel.spans.wants(inner.flow_id, inner.uid)
        )
        self._phase_log = [] if capture else None
        decision = self._forward(packet, bypass_memo=capture)
        decision = self._fill_interface(decision)
        self.stats.record(decision)
        if tel_enabled:
            cycles_after = self.hw_data_cycles
            delta = cycles_after - self._observed_data_cycles
            self._observed_data_cycles = cycles_after
            if delta:
                tel.hw_cycles.labels(self.name, "data").inc(delta)
                tel.hw_packet_cycles.labels(self.name).observe(delta)
                # flow accounting attributes the cycle delta to this
                # packet's flow record; rides the guard already taken
                if tel.flows is not None:
                    tel.flows.record_hw_cycles(
                        self.name, inner.flow_id, delta
                    )
        self.observe(packet, decision)
        if capture:
            self._emit_phases(tel, inner.uid, inner.flow_id)
        return decision

    def _emit_phases(self, tel, uid: int, flow_id: int) -> None:
        """Publish the captured phases as cycles-domain events, with
        the cycle-to-scheduler-time anchor (``anchor_time`` is "now":
        the phases just ran, instantaneously in scheduler time)."""
        log = self._phase_log
        self._phase_log = None
        if not log:
            return
        clock = tel.events.clock
        anchor = clock() if clock is not None else 0.0
        for phase, parent, cycle_start, cycle_end in log:
            event = HWOpExecuted(
                node=self.name,
                uid=uid,
                flow_id=flow_id,
                phase=phase,
                parent_phase=parent,
                cycle_start=cycle_start,
                cycle_end=cycle_end,
                anchor_time=anchor,
                clock_hz=STRATIX_EP1S40.clock_hz,
            )
            event.time = float(cycle_start)
            tel.events.emit(event)

    def _log_update_phases(self, log, offset: int, result) -> None:
        """Record an UPDATE transaction and its RTL-level split."""
        log.append(("update", None, offset, offset + result.cycles))
        searched = result.search_cycles
        if searched is not None:
            log.append(("search", "update", offset, offset + searched))
            if result.cycles > searched:
                log.append(
                    ("modify", "update", offset + searched, offset + result.cycles)
                )

    def _load_stack(self, stack: LabelStack) -> int:
        cycles = 0
        for entry in reversed(list(stack)):
            cycles += self.modifier.user_push(entry)
        return cycles

    def _drain_stack(self) -> int:
        cycles = 0
        while self.modifier.stack():
            _, c = self.modifier.user_pop()
            cycles += c
        return cycles

    def _hw_transit(self, packet: MPLSPacket) -> ForwardingDecision:
        if packet.stack.is_empty:
            return ForwardingDecision(
                Action.DISCARD,
                reason=f"{self.name}: labelled packet with empty stack",
            )
        top = packet.stack.top
        nhlfe = self.ilm.get(top.label)
        log = self._phase_log
        cycles = self._load_stack(packet.stack)
        if log is not None:
            log.append(("stack-load", None, 0, cycles))
        result = self.modifier.update()
        if log is not None:
            self._log_update_phases(log, cycles, result)
        cycles += result.cycles
        if result.discarded:
            self.hw_data_cycles += cycles
            self.fast_path_packets += 1
            reason = (
                f"{self.name}: MPLS TTL expired"
                if nhlfe is not None and top.ttl <= 1
                else f"{self.name}: no ILM entry for label {top.label}"
            )
            return ForwardingDecision(Action.DISCARD, reason=reason)
        new_stack = LabelStack(list(result.stack))
        drained = self._drain_stack()
        if log is not None:
            log.append(("stack-drain", None, cycles, cycles + drained))
        cycles += drained
        self.hw_data_cycles += cycles
        self.fast_path_packets += 1
        next_hop = nhlfe.next_hop if nhlfe is not None else None
        out_interface = nhlfe.out_interface if nhlfe is not None else None
        if new_stack.is_empty:
            inner = packet.inner
            inner = inner.with_ttl(min(max(0, top.ttl - 1), inner.ttl))
            return ForwardingDecision(
                Action.FORWARD_IP,
                packet=inner,
                next_hop=next_hop,
                out_interface=out_interface,
            )
        return ForwardingDecision(
            Action.FORWARD_MPLS,
            packet=packet.with_stack(new_stack),
            next_hop=next_hop,
            out_interface=out_interface,
        )

    def _hw_ingress(self, packet: IPv4Packet) -> ForwardingDecision:
        dst = packet.identifier()
        cached_label = self._flow_cache.get(dst)
        if cached_label is None:
            # slow path: software classification, then learn into the
            # level-1 flow cache
            self.slow_path_packets += 1
            pair = self.ftn.get(packet)
            if pair is None:
                return ForwardingDecision(
                    Action.DISCARD,
                    reason=f"{self.name}: no FEC matches packet to {packet.dst}",
                )
            _fec, nhlfe = pair
            if nhlfe.op is not LabelOp.PUSH:
                # unlabelled forwarding (e.g. PHP-adjacent): software path
                if packet.ttl <= 1:
                    return ForwardingDecision(
                        Action.DISCARD,
                        reason=f"{self.name}: IPv4 TTL expired at ingress",
                    )
                return ForwardingDecision(
                    Action.FORWARD_IP,
                    packet=packet.decremented(),
                    next_hop=nhlfe.next_hop,
                    out_interface=nhlfe.out_interface,
                )
            if self._flow_cache_capacity == 0:
                # no level-1 space at all: forward in software
                return self._software_ingress(packet, nhlfe)
            if len(self._flow_cache) >= self._flow_cache_capacity:
                # evict the least recently used destination through the
                # hardware's remove path, keeping dict and IB in step
                old_dst, _ = self._flow_cache.popitem(last=False)
                removal = self.modifier.remove_pair(1, old_dst)
                self.hw_control_cycles += removal.cycles
                self.flow_cache_evictions += 1
            self.hw_control_cycles += self.modifier.write_pair(
                1, dst, nhlfe.out_label, LabelOp.PUSH
            )
            self._flow_cache[dst] = nhlfe.out_label
            cached_label = nhlfe.out_label
        else:
            self._flow_cache.move_to_end(dst)
            self.fast_path_packets += 1
        nhlfe = self._ingress_nhlfe_for(packet, cached_label)
        cos = (
            nhlfe.cos
            if nhlfe is not None and nhlfe.cos is not None
            else _dscp_to_cos(packet.dscp)
        )
        log = self._phase_log
        result = self.modifier.update(
            packet_id=dst, ttl=packet.ttl, cos=cos
        )
        if log is not None:
            self._log_update_phases(log, 0, result)
        self.hw_data_cycles += result.cycles
        if result.discarded:
            self._drain_stack()
            return ForwardingDecision(
                Action.DISCARD,
                reason=f"{self.name}: IPv4 TTL expired at ingress"
                if packet.ttl <= 1
                else f"{self.name}: hardware discard at ingress",
            )
        new_stack = LabelStack(list(result.stack))
        drained = self._drain_stack()
        if log is not None:
            log.append(
                ("stack-drain", None, result.cycles, result.cycles + drained)
            )
        self.hw_data_cycles += drained
        inner = packet.decremented()
        return ForwardingDecision(
            Action.FORWARD_MPLS,
            packet=MPLSPacket(new_stack, inner),
            next_hop=nhlfe.next_hop if nhlfe is not None else None,
            out_interface=nhlfe.out_interface if nhlfe is not None else None,
        )

    def _software_ingress(
        self, packet: IPv4Packet, nhlfe
    ) -> ForwardingDecision:
        """Pure-software push, used when the flow cache has no space.

        Semantically identical to
        :meth:`~repro.mpls.forwarding.ForwardingEngine.ingress`.
        """
        if packet.ttl <= 1:
            return ForwardingDecision(
                Action.DISCARD,
                reason=f"{self.name}: IPv4 TTL expired at ingress",
            )
        from repro.mpls.label import LabelEntry

        inner = packet.decremented()
        cos = (
            nhlfe.cos if nhlfe.cos is not None else _dscp_to_cos(packet.dscp)
        )
        stack = LabelStack().push(
            LabelEntry(label=nhlfe.out_label, cos=cos, ttl=inner.ttl)
        )
        return ForwardingDecision(
            Action.FORWARD_MPLS,
            packet=MPLSPacket(stack, inner),
            next_hop=nhlfe.next_hop,
            out_interface=nhlfe.out_interface,
        )

    def _ingress_nhlfe_for(self, packet: IPv4Packet, label: int):
        pair = self.ftn.get(packet)
        return pair[1] if pair is not None else None

    # -- statistics ---------------------------------------------------------
    @property
    def mean_hw_cycles_per_packet(self) -> float:
        total = self.fast_path_packets + self.slow_path_packets
        return self.hw_data_cycles / total if total else 0.0
