"""EmbeddedMPLS: the full architecture of the paper's Figure 6.

``Packet In -> INGRESS PACKET PROCESSING -> LABEL STACK MODIFIER ->
EGRESS PACKET PROCESSING -> Packet Out``, with "routing functionality"
(the software control plane) programming the information base through
the same write path the hardware exposes.

The label stack modifier backend is selectable:

* ``backend="rtl"`` -- the cycle-accurate RTL
  (:class:`~repro.hw.driver.ModifierDriver`); every packet is processed
  by simulated clock edges.  Slow, exact.
* ``backend="model"`` -- the functional model
  (:class:`~repro.hw.model.FunctionalModifier`), equivalent by the
  property tests in ``tests/hw/test_rtl_vs_model.py``, with cycle
  counts from the Table 6 formulas.  Fast enough for network-scale
  workloads.

Either way the per-packet clock-cycle cost is reported, and
:class:`~repro.core.device.FPGADevice` converts it to time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.core.device import FPGADevice, STRATIX_EP1S40
from repro.core.packet_processing import (
    EgressPacketProcessor,
    Frame,
    IngressPacketProcessor,
)
from repro.hw.driver import ModifierDriver
from repro.hw.model import FunctionalModifier
from repro.mpls.label import LabelEntry, LabelOp
from repro.mpls.stack import LabelStack
from repro.mpls.router import RouterRole


@dataclass(frozen=True)
class ProcessResult:
    """Outcome of pushing one frame through the architecture."""

    frame: Optional[Frame]          # None when the packet was discarded
    discarded: bool
    performed: Optional[LabelOp]
    cycles: int
    seconds: float
    stack_before: Tuple[LabelEntry, ...]
    stack_after: Tuple[LabelEntry, ...]


class EmbeddedMPLS:
    """The hardware/software MPLS router of Figure 6.

    Parameters
    ----------
    role:
        LER or LSR; programs the hardware ``rtrtype`` pin.
    backend:
        ``"rtl"`` or ``"model"`` (see module docstring).
    device:
        Clock/memory model for cycle -> time conversion.
    """

    def __init__(
        self,
        role: RouterRole = RouterRole.LER,
        backend: str = "model",
        device: FPGADevice = STRATIX_EP1S40,
        ib_depth: int = 1024,
    ) -> None:
        if backend == "rtl":
            self.modifier: Union[ModifierDriver, FunctionalModifier] = (
                ModifierDriver(ib_depth=ib_depth)
            )
        elif backend == "model":
            self.modifier = FunctionalModifier(ib_depth=ib_depth)
        else:
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self.role = role
        self.device = device
        self.ingress = IngressPacketProcessor()
        self.egress = EgressPacketProcessor()
        self.modifier.reset()
        self.modifier.set_router_type(role is RouterRole.LSR)
        self.packets_processed = 0
        self.packets_discarded = 0
        self.total_cycles = 0

    # -- routing functionality's interface (software side) -----------------
    def install_route(
        self, level: int, index: int, new_label: int, op: LabelOp
    ) -> int:
        """Program one label pair; the software control plane's write
        path into the hardware information base."""
        return self.modifier.write_pair(level, index, new_label, op)

    def install_ingress_route(self, destination: int, label: int) -> int:
        """Convenience: packet-identifier-keyed push at level 1."""
        return self.install_route(1, destination, label, LabelOp.PUSH)

    def install_swap(self, in_label: int, out_label: int, level: int = 1) -> int:
        return self.install_route(level, in_label, out_label, LabelOp.SWAP)

    def install_pop(self, in_label: int, level: int = 1) -> int:
        # the paired label value is unused for a pop; store 16 (the
        # lowest unreserved value) to keep the memory word valid
        return self.install_route(level, in_label, 16, LabelOp.POP)

    def update_route(
        self, level: int, index: int, new_label: int, op: LabelOp
    ) -> int:
        """Rewrite an existing route in place (an LSP re-signalled with
        a new downstream label).  Returns the cycles spent; raises if
        the route does not exist -- the control plane must know what it
        installed."""
        result = self.modifier.modify_pair(level, index, new_label, op)
        if not result.found:
            raise KeyError(
                f"no route for index {index} at level {level} to update"
            )
        return result.cycles

    def remove_route(self, level: int, index: int) -> int:
        """Withdraw a route (an LSP torn down).  Returns the cycles
        spent; raises if the route does not exist."""
        result = self.modifier.remove_pair(level, index)
        if not result.found:
            raise KeyError(
                f"no route for index {index} at level {level} to remove"
            )
        return result.cycles

    def read_route(self, level: int, address: int):
        """Audit the information base directly (the paper's read path)."""
        return self.modifier.read_entry(level, address)

    # -- the data path ------------------------------------------------------
    def process_frame(self, frame: Frame) -> ProcessResult:
        """Figure 6 end to end: parse, modify the stack, rebuild."""
        parsed = self.ingress.parse(frame)
        cycles = 0
        # Load the parsed stack into the hardware (bottom first so the
        # top ends up on top) -- the ingress module "delivers the label
        # stack ... to the label stack modifier".
        for entry in reversed(list(parsed.stack)):
            cycles += self.modifier.user_push(entry)
        stack_before = tuple(self.modifier.stack())
        result = self.modifier.update(
            packet_id=parsed.packet_identifier,
            ttl=parsed.inner.ttl,
            cos=_dscp_cos(parsed.inner.dscp),
        )
        cycles += result.cycles
        self.packets_processed += 1
        self.total_cycles += cycles
        if result.discarded:
            self.packets_discarded += 1
            return ProcessResult(
                frame=None,
                discarded=True,
                performed=None,
                cycles=cycles,
                seconds=self.device.time_for_cycles(cycles),
                stack_before=stack_before,
                stack_after=(),
            )
        new_stack = LabelStack(list(result.stack))
        # drain the hardware stack so the next packet starts clean
        for _ in range(len(result.stack)):
            _, pop_cycles = self.modifier.user_pop()
            cycles += pop_cycles
            self.total_cycles += pop_cycles
        new_ttl = None
        if new_stack.is_empty and stack_before:
            # egress LER: copy the decremented MPLS TTL back into IPv4
            new_ttl = max(0, stack_before[0].ttl - 1)
        out_frame = self.egress.build(parsed, new_stack, new_ttl=new_ttl)
        return ProcessResult(
            frame=out_frame,
            discarded=False,
            performed=result.performed,
            cycles=cycles,
            seconds=self.device.time_for_cycles(cycles),
            stack_before=stack_before,
            stack_after=tuple(result.stack),
        )

    # -- statistics ---------------------------------------------------------
    @property
    def mean_cycles_per_packet(self) -> float:
        if not self.packets_processed:
            return 0.0
        return self.total_cycles / self.packets_processed


def _dscp_cos(dscp: int) -> int:
    return (dscp >> 3) & 0x7
