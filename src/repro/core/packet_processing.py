"""Ingress and egress packet processing modules (paper Figure 6).

"The ingress packet processing module is used to deliver the label
stack and a packet identifier to the label stack modifier. ... Once the
label stack has been modified, it is delivered to the egress packet
processing module that replaces the label stack in the initial packet
and generates the new packet."

The processors speak real layer-2 frames: Ethernet II (IPv4 or MPLS
ethertypes), AAL5 cell trains, and Frame Relay frames, using the codecs
of :mod:`repro.net`.  Ingress output is a :class:`ParsedPacket` -- the
packet identifier, the decoded label stack, and the retained payload;
egress rebuilds the same frame type around the modified stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from repro.mpls.stack import LabelStack
from repro.net.atm import ATMCell, reassemble_aal5, segment_aal5
from repro.net.ethernet import (
    ETHERTYPE_IPV4,
    ETHERTYPE_MPLS,
    EthernetFrame,
)
from repro.net.frame_relay import FrameRelayFrame
from repro.net.packet import IPv4Packet, MPLSPacket

Frame = Union[EthernetFrame, FrameRelayFrame, Sequence[ATMCell]]


class PacketProcessingError(Exception):
    """A frame could not be parsed or rebuilt."""


@dataclass(frozen=True)
class ParsedPacket:
    """The ingress module's product.

    ``packet_identifier`` is what the paper's architecture feeds to
    information-base level 1 ("For IP packets, the packet identifier is
    typically the destination address"); ``stack`` is the label stack
    (possibly empty for a packet arriving from a layer-2 network); the
    inner packet is retained for the egress module.
    """

    packet_identifier: int
    stack: LabelStack
    inner: IPv4Packet
    l2_kind: str  # "ethernet" | "atm" | "frame-relay"
    l2_context: Tuple  # addressing needed to rebuild the frame


class IngressPacketProcessor:
    """Parses layer-2 frames into (identifier, stack, payload)."""

    def __init__(self) -> None:
        self.parsed = 0
        self.errors = 0

    def parse(self, frame: Frame) -> ParsedPacket:
        try:
            if isinstance(frame, EthernetFrame):
                return self._parse_ethernet(frame)
            if isinstance(frame, FrameRelayFrame):
                return self._parse_frame_relay(frame)
            if isinstance(frame, (list, tuple)) and frame and isinstance(
                frame[0], ATMCell
            ):
                return self._parse_atm(frame)
        except PacketProcessingError:
            self.errors += 1
            raise
        except Exception as exc:
            self.errors += 1
            raise PacketProcessingError(str(exc)) from exc
        self.errors += 1
        raise PacketProcessingError(f"unrecognized frame {type(frame).__name__}")

    def _finish(
        self, payload: bytes, labelled: bool, l2_kind: str, l2_context: Tuple
    ) -> ParsedPacket:
        if labelled:
            stack_len = LabelStack.wire_length(payload)
            stack = LabelStack.decode_bytes(payload[:stack_len])
            inner = IPv4Packet.deserialize(payload[stack_len:])
        else:
            stack = LabelStack()
            inner = IPv4Packet.deserialize(payload)
        self.parsed += 1
        return ParsedPacket(
            packet_identifier=inner.identifier(),
            stack=stack,
            inner=inner,
            l2_kind=l2_kind,
            l2_context=l2_context,
        )

    def _parse_ethernet(self, frame: EthernetFrame) -> ParsedPacket:
        if frame.ethertype not in (ETHERTYPE_IPV4, ETHERTYPE_MPLS):
            raise PacketProcessingError(
                f"unsupported ethertype {frame.ethertype:#06x}"
            )
        return self._finish(
            frame.payload,
            labelled=frame.is_mpls,
            l2_kind="ethernet",
            l2_context=(frame.src_mac, frame.dst_mac),
        )

    def _parse_atm(self, cells: Sequence[ATMCell]) -> ParsedPacket:
        pdu = reassemble_aal5(cells)
        labelled = self._looks_labelled(pdu.payload)
        return self._finish(
            pdu.payload,
            labelled=labelled,
            l2_kind="atm",
            l2_context=(pdu.vpi, pdu.vci),
        )

    def _parse_frame_relay(self, frame: FrameRelayFrame) -> ParsedPacket:
        labelled = self._looks_labelled(frame.payload)
        return self._finish(
            frame.payload,
            labelled=labelled,
            l2_kind="frame-relay",
            l2_context=(frame.dlci,),
        )

    @staticmethod
    def _looks_labelled(payload: bytes) -> bool:
        """ATM and Frame Relay lack an ethertype; distinguish labelled
        from plain IPv4 by the version nibble (an MPLS label stack's
        first nibble is the label's top bits -- for allocated labels
        below 2^16 it is 0, never 4)."""
        return bool(payload) and (payload[0] >> 4) != 4


class EgressPacketProcessor:
    """Rebuilds the output frame around a modified label stack."""

    def __init__(self) -> None:
        self.built = 0

    def build(
        self,
        parsed: ParsedPacket,
        new_stack: LabelStack,
        new_ttl: Optional[int] = None,
    ) -> Frame:
        """Replace the stack in the original packet and re-frame it.

        ``new_ttl`` overwrites the inner IPv4 TTL when the stack became
        empty (the egress-LER case, where the MPLS TTL is copied back).
        """
        inner = parsed.inner
        if new_ttl is not None:
            inner = inner.with_ttl(new_ttl)
        if new_stack.is_empty:
            payload = inner.serialize()
            labelled = False
        else:
            payload = MPLSPacket(new_stack, inner).serialize()
            labelled = True
        self.built += 1
        if parsed.l2_kind == "ethernet":
            src_mac, dst_mac = parsed.l2_context
            return EthernetFrame(
                dst_mac=dst_mac,
                src_mac=src_mac,
                ethertype=ETHERTYPE_MPLS if labelled else ETHERTYPE_IPV4,
                payload=payload,
            )
        if parsed.l2_kind == "atm":
            vpi, vci = parsed.l2_context
            return segment_aal5(payload, vpi=vpi, vci=vci)
        if parsed.l2_kind == "frame-relay":
            (dlci,) = parsed.l2_context
            return FrameRelayFrame(dlci=dlci, payload=payload)
        raise PacketProcessingError(f"unknown l2 kind {parsed.l2_kind!r}")
