"""Pipelined-architecture throughput model.

The paper's Figure 6 is naturally a three-stage pipeline -- ingress
packet processing, the label stack modifier, egress packet processing
-- and its conclusion claims the architecture "can be implemented to
achieve optimal performance".  This module quantifies that future-work
claim analytically:

* **sequential** operation (one packet owns all three stages, as the
  paper's control flow implies): per-packet latency is the *sum* of the
  stage costs and throughput its reciprocal;
* **pipelined** operation (each stage works on a different packet):
  latency is unchanged but throughput is set by the *slowest stage* --
  for this architecture, the label stack modifier's search.

The model also reports the speedup ceiling (sum / max of stage costs)
and the line rates both variants can saturate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.device import FPGADevice, STRATIX_EP1S40
from repro.core.timing import HardwareCycleModel
from repro.obs.telemetry import get_telemetry

#: Default per-stage costs (cycles) for the packet processing modules:
#: parsing/rebuilding a frame is a streaming operation a hardware block
#: pipelines over the bytes; a handful of cycles of fixed work per
#: packet is representative.
INGRESS_PP_CYCLES = 4
EGRESS_PP_CYCLES = 4


@dataclass(frozen=True)
class PipelinePoint:
    """Throughput of both operating modes at one table size."""

    n_entries: int
    stage_cycles: Tuple[int, int, int]  # ingress, modifier, egress
    sequential_cycles_per_packet: int
    pipelined_cycles_per_packet: int

    @property
    def speedup(self) -> float:
        return (
            self.sequential_cycles_per_packet
            / self.pipelined_cycles_per_packet
        )


def pipeline_point(
    n_entries: int,
    ingress_cycles: int = INGRESS_PP_CYCLES,
    egress_cycles: int = EGRESS_PP_CYCLES,
) -> PipelinePoint:
    """Stage costs for a worst-case transit swap at one table size."""
    if n_entries < 1:
        raise ValueError("n_entries must be >= 1")
    hw = HardwareCycleModel()
    modifier = hw.update_swap_worst(n_entries)
    stages = (ingress_cycles, modifier, egress_cycles)
    point = PipelinePoint(
        n_entries=n_entries,
        stage_cycles=stages,
        sequential_cycles_per_packet=sum(stages),
        pipelined_cycles_per_packet=max(stages),
    )
    tel = get_telemetry()
    if tel.enabled:
        tel.model_evals.labels("pipeline").inc()
        tel.pipeline_speedup.labels(str(n_entries)).set(point.speedup)
    return point


@dataclass(frozen=True)
class PipelineComparison:
    points: List[PipelinePoint]
    device: FPGADevice

    def throughput_pps(self, point: PipelinePoint, pipelined: bool) -> float:
        cycles = (
            point.pipelined_cycles_per_packet
            if pipelined
            else point.sequential_cycles_per_packet
        )
        return self.device.clock_hz / cycles


def compare_pipeline(
    table_sizes=(1, 16, 64, 256, 1024),
    device: FPGADevice = STRATIX_EP1S40,
) -> PipelineComparison:
    """Sequential vs pipelined operation across table sizes.

    The punchline the model makes precise: pipelining helps most when
    the stages are balanced (small tables), but once the linear search
    dominates, the modifier stage *is* the pipeline and the speedup
    collapses towards 1 -- making the search, again, the component to
    fix first.
    """
    return PipelineComparison(
        points=[pipeline_point(n) for n in table_sizes],
        device=device,
    )
