"""The FPGA device model.

The paper's Section 4: "an FPGA like the Altera Stratix EP1S40F780C5
with a 50 MHz clock could perform those operations in approximately
[0.123] ms", and Section 3: "the total memory use is easily supported
by standard reconfigurable computing environments".  This module turns
both claims into checkable numbers: cycle -> time conversion at a
configurable clock, and an information-base memory budget compared
against the device's block RAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.info_base import (
    LABEL_INDEX_WIDTH,
    LABEL_WIDTH,
    LEVEL1_INDEX_WIDTH,
    LEVEL_DEPTH,
    OP_WIDTH,
)


@dataclass(frozen=True)
class FPGADevice:
    """A reconfigurable device: clock and memory capacity."""

    name: str
    clock_hz: float
    memory_bits: int
    logic_elements: int

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")
        if self.memory_bits <= 0 or self.logic_elements <= 0:
            raise ValueError("capacities must be positive")

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.clock_hz

    def time_for_cycles(self, cycles: int) -> float:
        """Wall-clock seconds for ``cycles`` at this device's clock."""
        if cycles < 0:
            raise ValueError(f"negative cycle count {cycles}")
        return cycles / self.clock_hz

    def cycles_for_time(self, seconds: float) -> int:
        return int(seconds * self.clock_hz)

    # -- memory budget ------------------------------------------------------
    def info_base_bits(self, depth: int = LEVEL_DEPTH) -> int:
        """Bits of block RAM the three-level information base needs.

        Level 1 stores 32-bit indices; levels 2-3 store 20-bit indices;
        all levels store a 20-bit label and a 2-bit operation per pair
        (Figure 13).
        """
        level1 = depth * (LEVEL1_INDEX_WIDTH + LABEL_WIDTH + OP_WIDTH)
        level23 = 2 * depth * (LABEL_INDEX_WIDTH + LABEL_WIDTH + OP_WIDTH)
        return level1 + level23

    def fits_info_base(self, depth: int = LEVEL_DEPTH) -> bool:
        """The paper's space claim, checked against this device."""
        return self.info_base_bits(depth) <= self.memory_bits

    def memory_utilization(self, depth: int = LEVEL_DEPTH) -> float:
        return self.info_base_bits(depth) / self.memory_bits


#: The paper's target part.  Stratix EP1S40: 41,250 logic elements and
#: about 3.4 Mbit of embedded block RAM (M512 + M4K + M-RAM).
STRATIX_EP1S40 = FPGADevice(
    name="Altera Stratix EP1S40F780C5",
    clock_hz=50e6,
    memory_bits=3_423_744,
    logic_elements=41_250,
)
