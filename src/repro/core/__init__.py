"""The paper's primary contribution, assembled.

* :mod:`repro.core.device` -- the FPGA device model (Altera Stratix
  EP1S40F780C5 at 50 MHz) with cycle -> time conversion and a memory
  budget check,
* :mod:`repro.core.timing` -- the analytic cycle model of Table 6 and
  the software-forwarding cost model used as the baseline,
* :mod:`repro.core.packet_processing` -- the ingress and egress packet
  processing modules of Figure 6,
* :mod:`repro.core.architecture` -- :class:`EmbeddedMPLS`: ingress
  packet processing -> label stack modifier -> egress packet
  processing, with the software routing plane programming the
  information base,
* :mod:`repro.core.hybrid` -- hardware/software partitioning
  comparison (the paper's motivating claim, quantified).
"""

from repro.core.device import FPGADevice, STRATIX_EP1S40
from repro.core.timing import (
    HardwareCycleModel,
    SoftwareCostModel,
    WorstCaseBreakdown,
    worst_case_scenario,
)
from repro.core.packet_processing import (
    EgressPacketProcessor,
    IngressPacketProcessor,
    PacketProcessingError,
    ParsedPacket,
)
from repro.core.architecture import EmbeddedMPLS, ProcessResult
from repro.core.hwnode import HardwareLSRNode
from repro.core.hybrid import PartitionComparison, compare_partitions
from repro.core.pipeline import (
    PipelineComparison,
    PipelinePoint,
    compare_pipeline,
    pipeline_point,
)

__all__ = [
    "FPGADevice",
    "STRATIX_EP1S40",
    "HardwareCycleModel",
    "SoftwareCostModel",
    "WorstCaseBreakdown",
    "worst_case_scenario",
    "IngressPacketProcessor",
    "EgressPacketProcessor",
    "ParsedPacket",
    "PacketProcessingError",
    "EmbeddedMPLS",
    "ProcessResult",
    "HardwareLSRNode",
    "PartitionComparison",
    "compare_partitions",
    "PipelineComparison",
    "PipelinePoint",
    "compare_pipeline",
    "pipeline_point",
]
