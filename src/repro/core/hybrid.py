"""Hardware/software partitioning comparison.

The paper's premise: "MPLS performance can be enhanced by executing
core tasks in hardware while allowing other tasks to be executed in
software."  This module quantifies the claim for the core task --
label switching -- by pricing the same per-packet work under the
hardware cycle model (Table 6) and the software cost model, across
information-base sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.device import FPGADevice, STRATIX_EP1S40
from repro.core.timing import HardwareCycleModel, SoftwareCostModel


@dataclass(frozen=True)
class PartitionPoint:
    """One (table size) sample of the comparison."""

    n_entries: int
    hw_cycles: int
    hw_seconds: float
    sw_cycles: int
    sw_seconds: float
    sw_hashed_cycles: int
    sw_hashed_seconds: float

    @property
    def speedup_vs_linear_sw(self) -> float:
        return self.sw_seconds / self.hw_seconds

    @property
    def speedup_vs_hashed_sw(self) -> float:
        return self.sw_hashed_seconds / self.hw_seconds


@dataclass(frozen=True)
class PartitionComparison:
    """Hardware vs software label switching across table sizes."""

    points: List[PartitionPoint]
    hw_clock_hz: float
    sw_clock_hz: float

    def crossover_entries(self) -> Optional[int]:
        """Smallest table size where hashed software out-runs the
        hardware's linear search (if any in the sampled range)."""
        for point in self.points:
            if point.sw_hashed_seconds < point.hw_seconds:
                return point.n_entries
        return None


def compare_partitions(
    table_sizes: Sequence[int] = (1, 4, 16, 64, 256, 1024),
    device: FPGADevice = STRATIX_EP1S40,
    software: Optional[SoftwareCostModel] = None,
) -> PartitionComparison:
    """Price a worst-case label swap per packet under both partitions.

    The hardware pays Table 6's ``3n + 5 (+6)`` at the FPGA clock; the
    software pays the parameterized instruction costs at the CPU clock,
    in both its linear-scan and hash-lookup variants.
    """
    hw = HardwareCycleModel(device)
    sw = software if software is not None else SoftwareCostModel()
    points = []
    for n in table_sizes:
        if n < 1:
            raise ValueError(f"table size must be >= 1, got {n}")
        hw_cycles = hw.update_swap_worst(n)
        sw_cycles = sw.per_packet_swap_cycles(n, hashed=False)
        sw_hashed = sw.per_packet_swap_cycles(n, hashed=True)
        points.append(
            PartitionPoint(
                n_entries=n,
                hw_cycles=hw_cycles,
                hw_seconds=hw.seconds(hw_cycles),
                sw_cycles=sw_cycles,
                sw_seconds=sw_cycles / sw.clock_hz,
                sw_hashed_cycles=sw_hashed,
                sw_hashed_seconds=sw_hashed / sw.clock_hz,
            )
        )
    return PartitionComparison(
        points=points,
        hw_clock_hz=device.clock_hz,
        sw_clock_hz=sw.clock_hz,
    )
