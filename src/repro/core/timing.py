"""Analytic cycle models: Table 6 and the software baseline.

:class:`HardwareCycleModel` reproduces Table 6's per-operation costs in
closed form, including the worst-case composite the paper computes
(reset + three pushes + 1024 pair writes + a full-scan swap = 6167
cycles, about 0.1233 ms at 50 MHz).  The RTL benchmarks assert the
simulated hardware agrees with this model cycle-for-cycle.

:class:`SoftwareCostModel` prices the same elementary operations for a
software MPLS implementation on an embedded processor.  The point is
not the absolute numbers (they are parameterized) but the *structure*:
software pays instruction overhead per packet and per table entry that
the dedicated datapath does not, which is the paper's motivating claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.device import FPGADevice, STRATIX_EP1S40
from repro.hw.model import (
    INGRESS_PUSH_TAIL_CYCLES,
    POP_TAIL_CYCLES,
    PUSH_TAIL_CYCLES,
    RESET_CYCLES,
    SEARCH_OVERHEAD,
    SEARCH_PER_ENTRY,
    SWAP_TAIL_CYCLES,
    USER_POP_CYCLES,
    USER_PUSH_CYCLES,
    WRITE_PAIR_CYCLES,
    search_cycles,
)
from repro.mpls.forwarding import OpCounts
from repro.obs.telemetry import get_telemetry


class HardwareCycleModel:
    """Closed-form Table 6 costs on a given device."""

    def __init__(self, device: FPGADevice = STRATIX_EP1S40) -> None:
        self.device = device

    # -- per-operation costs (cycles) ------------------------------------
    reset = RESET_CYCLES
    user_push = USER_PUSH_CYCLES
    user_pop = USER_POP_CYCLES
    write_pair = WRITE_PAIR_CYCLES

    @staticmethod
    def search_worst(n_entries: int) -> int:
        """Table 6: 3n + 5."""
        return search_cycles(n_entries, None)

    @staticmethod
    def search_hit(position: int) -> int:
        """A hit at 0-based ``position``: 3k + 8."""
        return search_cycles(position + 1, position)

    @staticmethod
    def update_swap_worst(n_entries: int) -> int:
        """Full update performing a swap, worst-case search."""
        return search_cycles(n_entries, None) + SWAP_TAIL_CYCLES

    @staticmethod
    def update_pop_worst(n_entries: int) -> int:
        return search_cycles(n_entries, None) + POP_TAIL_CYCLES

    @staticmethod
    def update_push_worst(n_entries: int, nested: bool = True) -> int:
        tail = PUSH_TAIL_CYCLES if nested else INGRESS_PUSH_TAIL_CYCLES
        return search_cycles(n_entries, None) + tail

    # -- time conversion -------------------------------------------------
    def seconds(self, cycles: int) -> float:
        return self.device.time_for_cycles(cycles)

    def per_packet_swap_seconds(self, n_entries: int) -> float:
        """Worst-case time to label-switch one packet."""
        return self.seconds(self.update_swap_worst(n_entries))

    def packets_per_second(self, n_entries: int) -> float:
        """Worst-case label-switching rate (packets/s)."""
        return 1.0 / self.per_packet_swap_seconds(n_entries)


@dataclass(frozen=True)
class WorstCaseBreakdown:
    """The paper's Section 4 composite scenario, itemized."""

    reset: int
    pushes: int
    writes: int
    search: int
    swap: int
    total: int
    seconds: float

    def as_rows(self):
        return [
            ("reset", self.reset),
            ("push 3 stack entries", self.pushes),
            ("write 1024 label pairs", self.writes),
            ("search (n=1024, worst case)", self.search),
            ("swap from the information base", self.swap),
            ("total", self.total),
        ]


def worst_case_scenario(
    device: FPGADevice = STRATIX_EP1S40,
    n_entries: int = 1024,
    n_pushes: int = 3,
) -> WorstCaseBreakdown:
    """Reproduce the paper's worst-case arithmetic.

    "the worst case number of cycles required to reset the
    architecture, push three stack entries, fill an entire level with
    1024 label pairs and perform a swap would be 6167 cycles."
    """
    reset = RESET_CYCLES
    pushes = n_pushes * USER_PUSH_CYCLES
    writes = n_entries * WRITE_PAIR_CYCLES
    search = SEARCH_PER_ENTRY * n_entries + SEARCH_OVERHEAD
    swap = SWAP_TAIL_CYCLES
    total = reset + pushes + writes + search + swap
    tel = get_telemetry()
    if tel.enabled:
        tel.model_evals.labels("worst-case").inc()
    return WorstCaseBreakdown(
        reset=reset,
        pushes=pushes,
        writes=writes,
        search=search,
        swap=swap,
        total=total,
        seconds=device.time_for_cycles(total),
    )


@dataclass
class SoftwareCostModel:
    """Cycle costs of a software MPLS data plane on an embedded CPU.

    Defaults model a simple embedded RISC core running a C forwarding
    loop: tens of cycles of fixed overhead per packet (interrupt/DMA,
    header fetch, dispatch) and a handful of instructions per table
    entry scanned.  All knobs are explicit so the benchmarks can sweep
    them; the hardware-vs-software *shape* is robust across any sane
    setting.
    """

    per_packet_overhead: int = 120
    per_entry_scan: int = 12
    per_hash_lookup: int = 60
    per_stack_op: int = 25
    per_ttl_update: int = 10
    per_discard: int = 40
    clock_hz: float = 200e6

    def cycles_for_counts(self, counts: OpCounts, hashed: bool = False) -> int:
        """Price an :class:`OpCounts` tally.

        ``hashed`` switches the table lookups from linear scans to a
        hash-based lookup (the common software optimization; used by
        the search-scaling ablation bench).
        """
        tel = get_telemetry()
        if tel.enabled:
            tel.model_evals.labels("software-cost").inc()
        lookups = counts.ftn_lookups + counts.ilm_lookups
        if hashed:
            lookup_cost = lookups * self.per_hash_lookup
        else:
            lookup_cost = counts.entries_scanned * self.per_entry_scan
        stack_ops = counts.pushes + counts.pops + counts.swaps
        # each lookup corresponds to one packet entering the forwarding
        # loop, which pays the fixed per-packet overhead once
        return (
            lookups * self.per_packet_overhead
            + lookup_cost
            + stack_ops * self.per_stack_op
            + counts.ttl_updates * self.per_ttl_update
            + counts.discards * self.per_discard
        )

    def per_packet_swap_cycles(self, n_entries: int, hashed: bool = False) -> int:
        """One transit packet: lookup + TTL + swap."""
        counts = OpCounts(
            ilm_lookups=1,
            entries_scanned=0 if hashed else n_entries,
            swaps=1,
            ttl_updates=1,
        )
        return self.cycles_for_counts(counts, hashed=hashed)

    def per_packet_swap_seconds(self, n_entries: int, hashed: bool = False) -> float:
        return self.per_packet_swap_cycles(n_entries, hashed) / self.clock_hz

    def packets_per_second(self, n_entries: int, hashed: bool = False) -> float:
        return 1.0 / self.per_packet_swap_seconds(n_entries, hashed)
