"""Chaos runs: execute a fault scenario and report what survived.

:func:`run_scenario` builds the network a :class:`Scenario` describes,
arms its fault schedule through a
:class:`~repro.faults.injector.FaultInjector`, runs the simulation to
the scenario's horizon, and distils the outcome into a
:class:`ChaosReport`:

* forwarding availability (delivered / sent),
* FRR switchover latency, in simulated seconds *and* in hardware clock
  cycles at the paper's 50 MHz Stratix clock,
* packets lost before vs. after the last recovery (did the network
  actually become whole again?),
* per-fault MTTR, LDP session-recovery statistics and info-base scrub
  totals,
* graceful-restart outcomes (stale-marked/refreshed/flushed entries,
  stale-forwarding duration, per-flow loss) and consistency-audit
  totals -- present only when the scenario uses ``node-restart``
  faults or the ``audit`` key, so reports without them stay
  byte-identical to earlier versions,
* OAM probe statistics (per-FEC reachability, RTTs, SLO breaches,
  up/down transitions) when the scenario carries an ``oam`` key, and a
  span-tracing summary when the run was invoked with a sample rate --
  both gated the same way,
* control-plane overload statistics (queue accounting, hold-timer
  expiries, session survival, ingress shedding, LSP preemption) when
  the scenario carries an ``overload`` key -- gated the same way, so
  pre-overload reports stay byte-identical,
* flow-accounting totals, top talkers and the final traffic matrix
  when the scenario carries a ``flows`` key, plus the alert engine's
  rule set and full raise/clear history under an ``alerts`` key --
  both gated the same way.

Everything in the report derives from simulated time and seeded
randomness -- the same (scenario, seed) pair yields a byte-identical
JSON report, which the CI chaos-smoke step checks literally with
``cmp``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.device import STRATIX_EP1S40
from repro.faults.injector import FaultInjector
from repro.faults.scenario import Scenario, ScenarioError
from repro.mpls.fec import PrefixFEC
from repro.net.network import MPLSNetwork
from repro.net.traffic import CBRSource
from repro.obs import ListSink, get_telemetry


def _round(value: Optional[float]) -> Optional[float]:
    """Stable float formatting for reports (sub-nanosecond noise would
    still be deterministic, but rounding keeps diffs readable)."""
    return None if value is None else round(value, 9)


@dataclass
class ChaosRun:
    """The live objects of one chaos run (exposed for tests)."""

    scenario: Scenario
    seed: int
    network: MPLSNetwork
    injector: FaultInjector
    sources: List[CBRSource] = field(default_factory=list)
    ldp: Any = None
    message_ldp: Any = None
    frr: Any = None
    schedule: List[Any] = field(default_factory=list)
    auditor: Any = None
    oam: Any = None
    overload: Any = None
    shedder: Any = None
    #: the armed FlowAccountant / MatrixCollector / AlertEngine when
    #: the scenario carries ``flows`` (and ``alerts``) keys
    flows: Any = None
    collector: Any = None
    alert_engine: Any = None
    #: the armed SecurityMonitor when the scenario carries a
    #: ``security`` key
    security: Any = None
    #: the armed TopologyObserver when the scenario carries a ``topo``
    #: key (and telemetry is on)
    topo: Any = None
    #: the armed PCEController when the scenario carries a
    #: ``controller`` key
    controller: Any = None


def build_run(scenario: Scenario, seed: int = 0) -> ChaosRun:
    """Construct the network, control plane, traffic and injector for
    one scenario without running it."""
    topology, roles = scenario.build_topology()
    if scenario.hardware:
        from repro.core.hwnode import HardwareLSRNode

        network = MPLSNetwork(
            topology, roles=roles, node_factory=HardwareLSRNode
        )
    else:
        network = MPLSNetwork(topology, roles=roles)
    for flow in scenario.traffic:
        network.attach_host(flow.egress, flow.prefix)

    topo_observer = None
    if scenario.topo is not None and get_telemetry().enabled:
        from repro.obs.topo import TopologyObserver

        # armed before the control plane exists so the initial label
        # distribution (and everything after) lands in the database
        topo_observer = TopologyObserver(
            topology,
            snapshot_every=int(
                dict(scenario.topo).get("snapshot_every", 64)
            ),
        )
        topo_observer.attach()

    overload_cfg = None
    if scenario.overload is not None:
        from repro.control.overload import OverloadConfig

        overload_cfg = OverloadConfig.from_dict(
            scenario.overload, horizon=scenario.duration
        )

    ldp = message_ldp = frr = None
    if scenario.control == "ldp":
        from repro.control.ldp import LDPProcess

        ldp = LDPProcess(topology, network.nodes)
        for flow in scenario.traffic:
            ldp.establish_fec(PrefixFEC(flow.prefix), egress=flow.egress)
    elif scenario.control == "ldp-messages":
        from repro.control.ldp_sessions import MessageLDPProcess

        if overload_cfg is not None:
            message_ldp = MessageLDPProcess(
                topology,
                network.nodes,
                network.scheduler,
                overload=overload_cfg,
                retry_jitter=overload_cfg.retry_jitter,
                jitter_seed=seed,
            )
        else:
            message_ldp = MessageLDPProcess(
                topology, network.nodes, network.scheduler
            )
        message_ldp.start()
        for flow in scenario.traffic:
            message_ldp.announce_fec(
                flow.prefix, PrefixFEC(flow.prefix), egress=flow.egress
            )
    else:  # frr
        from repro.control.frr import FastRerouteManager
        from repro.control.rsvp_te import RSVPTESignaler

        signaler = RSVPTESignaler(topology, network.nodes)
        if overload_cfg is not None:
            signaler.preemption_enabled = overload_cfg.enabled
        frr = FastRerouteManager(signaler)
        flows = {flow.prefix: flow for flow in scenario.traffic}
        for entry in scenario.protection:
            prefix = entry.get("prefix", scenario.traffic[0].prefix)
            flow = flows.get(prefix)
            if flow is None:
                raise ScenarioError(
                    f"protection {entry.get('name')!r} names prefix "
                    f"{prefix!r} with no matching flow"
                )
            frr.protect(
                entry.get("name", f"protect-{prefix}"),
                entry.get("ingress", flow.ingress),
                entry.get("egress", flow.egress),
                PrefixFEC(prefix),
                bandwidth_bps=float(entry.get("bandwidth_bps", 0.0)),
            )

    sources = []
    for i, flow in enumerate(scenario.traffic):
        source = CBRSource(
            network.scheduler,
            network.source_sink(flow.ingress),
            src=flow.src,
            dst=flow.dst,
            rate_bps=flow.rate_bps,
            packet_size=flow.packet_size,
            start=flow.start,
            stop=flow.stop if flow.stop is not None else scenario.duration,
            seed=seed + i,
        )
        source.begin()
        sources.append(source)

    security = None
    if scenario.security is not None:
        from repro.security import SecurityConfig, SecurityMonitor

        try:
            security_cfg = SecurityConfig.from_dict(scenario.security)
        except ValueError as exc:
            raise ScenarioError(str(exc))
        security = SecurityMonitor(
            network, security_cfg, message_ldp=message_ldp
        )
        security.flows = [
            (flow.prefix, flow.egress, source.flow_id)
            for flow, source in zip(scenario.traffic, sources)
        ]
        security.flow_dsts = {
            flow.prefix: flow.dst for flow in scenario.traffic
        }
        security.arm()

    controller = None
    if scenario.controller is not None:
        from repro.control.controller import ControllerConfig, PCEController

        try:
            controller_cfg = ControllerConfig.from_dict(
                scenario.controller, horizon=scenario.duration
            )
        except ValueError as exc:
            raise ScenarioError(str(exc))
        controller = PCEController(
            network,
            controller_cfg,
            ldp=ldp,
            message_ldp=message_ldp,
            frr=frr,
            fec_specs=[
                (PrefixFEC(flow.prefix), flow.ingress, flow.egress)
                for flow in scenario.traffic
            ],
            seed=seed,
        )
        controller.start()

    injector = FaultInjector(
        network,
        ldp=ldp,
        message_ldp=message_ldp,
        frr=frr,
        detection_delay_s=scenario.detection_delay_s,
        seed=seed,
        security=security,
        controller=controller,
    )
    schedule = injector.apply(scenario, seed)
    auditor = None
    if scenario.audit is not None:
        from repro.faults.auditor import ConsistencyAuditor

        cfg = dict(scenario.audit)
        auditor = ConsistencyAuditor(
            network,
            period=float(cfg.get("period", 0.1)),
            start=(
                float(cfg["start"]) if cfg.get("start") is not None
                else None
            ),
            stop=scenario.duration,
            repair=bool(cfg.get("repair", True)),
            security=security,
        )
    oam = None
    if scenario.oam is not None:
        from repro.control.oam import OAMMonitor, ProbeTarget

        cfg = dict(scenario.oam)
        targets = [
            ProbeTarget(
                fec=flow.prefix,
                ingress=flow.ingress,
                destination=flow.dst,
            )
            for flow in scenario.traffic
        ]
        period = float(cfg.get("period", 0.05))
        timeout = (
            float(cfg["timeout"]) if cfg.get("timeout") is not None
            else period
        )
        oam = OAMMonitor(
            network,
            targets,
            period=period,
            start=float(cfg.get("start", 0.0)),
            # the last probe's verdict check must land inside the run
            # horizon, or it would stay pending forever
            stop=scenario.duration - timeout,
            timeout=timeout,
            slo_rtt_s=(
                float(cfg["slo_rtt_s"])
                if cfg.get("slo_rtt_s") is not None
                else None
            ),
        )
    shedder = None
    if (
        overload_cfg is not None
        and overload_cfg.enabled
        and message_ldp is not None
        and scenario.traffic
    ):
        from repro.control.overload import IngressShedder, ShedEntry

        mldp = message_ldp
        shedder = IngressShedder(
            [
                ShedEntry(
                    prefix=flow.prefix, cos=flow.cos, ingress=flow.ingress
                )
                for flow in scenario.traffic
            ],
            pressure=lambda: max(
                q.fill_fraction for q in mldp.queues.values()
            ),
            config=overload_cfg,
            scheduler=network.scheduler,
        )
        network.ingress_guard = shedder.guard
        shedder.arm()
    accountant = collector = alert_engine = None
    if scenario.flows is not None:
        from repro.obs.alerts import AlertEngine
        from repro.obs.flows import FlowAccountant, MatrixCollector

        cfg = dict(scenario.flows)
        accountant = FlowAccountant(
            active_timeout=float(cfg.get("active_timeout", 1.0)),
            idle_timeout=float(cfg.get("idle_timeout", 0.25)),
            capacity=int(cfg.get("capacity", 4096)),
            flow_fecs={
                source.flow_id: flow.prefix
                for flow, source in zip(scenario.traffic, sources)
            },
            # runtime flow ids come from a process-global counter;
            # export the scenario flow index instead so flow-record
            # exports are byte-stable across runs
            flow_ids={
                source.flow_id: i for i, source in enumerate(sources)
            },
        )
        if scenario.alerts is not None:
            alert_engine = AlertEngine(
                dict(scenario.alerts).get("rules", [])
            )
        bandwidths = {
            (ch.src.node, ch.dst.node): ch.bandwidth_bps
            for link in network.links.values()
            for ch in (link.forward, link.reverse)
        }
        period = float(cfg.get("matrix_period", 0.1))
        collector = MatrixCollector(
            accountant,
            network.scheduler,
            bandwidths=bandwidths,
            period=period,
            start=(
                float(cfg["matrix_start"])
                if cfg.get("matrix_start") is not None
                else None
            ),
            stop=scenario.duration,
            alerts=alert_engine,
        )
    return ChaosRun(
        scenario=scenario,
        seed=seed,
        network=network,
        injector=injector,
        sources=sources,
        ldp=ldp,
        message_ldp=message_ldp,
        frr=frr,
        schedule=schedule,
        auditor=auditor,
        oam=oam,
        overload=overload_cfg,
        shedder=shedder,
        flows=accountant,
        collector=collector,
        alert_engine=alert_engine,
        security=security,
        topo=topo_observer,
        controller=controller,
    )


@dataclass
class ChaosReport:
    """The deterministic outcome of one chaos run."""

    data: Dict[str, Any]
    #: The :class:`~repro.obs.spans.SpanRecorder` of a traced run
    #: (``sample_rate`` was given), for export; not part of the JSON.
    recorder: Any = None
    #: The run's FlowAccountant / MatrixCollector / AlertEngine when
    #: the scenario carried a ``flows`` key, for export and rendering;
    #: not part of the JSON.
    flows: Any = None
    collector: Any = None
    alert_engine: Any = None
    #: The run's TopologyObserver when the scenario carried a ``topo``
    #: key, for time-travel queries and export; not part of the JSON.
    topo: Any = None

    def to_json(self) -> str:
        return json.dumps(self.data, sort_keys=True, indent=2) + "\n"

    def __getitem__(self, key: str) -> Any:
        return self.data[key]


def run_scenario(
    scenario: Scenario,
    seed: int = 0,
    sample_rate: Optional[float] = None,
    batching: bool = False,
) -> ChaosReport:
    """Run one scenario to its horizon and summarize the damage.

    ``sample_rate`` arms a :class:`~repro.obs.spans.SpanRecorder` over
    the run (head-based sampling at that rate, flows labelled with
    their FEC prefixes); the finalized recorder rides back on
    :attr:`ChaosReport.recorder` and a ``spans`` report section.

    ``batching`` runs the data plane on the batched fast path (per-node
    flow caches); the report is byte-identical to the scalar run of the
    same seed -- that equivalence is the contract
    ``tests/integration/test_batching_equivalence.py`` enforces.
    """
    run = build_run(scenario, seed)
    if batching:
        run.network.enable_batching()
    recorder = None
    if sample_rate is not None:
        from repro.obs.spans import SpanRecorder

        flow_fecs = {
            source.flow_id: flow.prefix
            for flow, source in zip(scenario.traffic, run.sources)
        }
        if run.oam is not None:
            flow_fecs.update(
                {fid: fec for fec, fid in run.oam.flow_ids.items()}
            )
        recorder = SpanRecorder(
            sample_rate=sample_rate,
            flow_fecs=flow_fecs,
            nodes=set(run.network.nodes),
        )
    tel = get_telemetry()
    sink = tel.events.add_sink(ListSink()) if tel.enabled else None
    try:
        processed = run.network.run(until=scenario.duration)
    finally:
        if sink is not None:
            tel.events.remove_sink(sink)
    run.injector.finalize()
    if run.security is not None:
        run.security.finalize()
    if recorder is not None:
        recorder.finalize()
        recorder.detach()
    if run.flows is not None:
        run.flows.finalize()
        run.flows.detach()
    if run.topo is not None:
        # verify the observed database against ground truth and
        # publish the health/convergence metrics before summarizing
        run.topo.finalize(run)
    report = summarize(run, processed, sink, recorder=recorder)
    if run.topo is not None:
        run.topo.detach()
    return report


def _overload_section(run: ChaosRun) -> Dict[str, Any]:
    """The gated ``overload`` report section (scenario has the key)."""
    from repro.control.overload import CLASS_NAMES, MessageClass

    cfg = run.overload
    section: Dict[str, Any] = {"enabled": cfg.enabled}
    mldp = run.message_ldp
    if mldp is not None and mldp.queues:
        queues = list(mldp.queues.values())
        section["queues"] = {
            "enqueued": sum(q.enqueued for q in queues),
            "serviced": sum(q.serviced for q in queues),
            "max_depth": max(q.max_depth for q in queues),
            "dropped_by_class": {
                CLASS_NAMES[c]: sum(q.dropped_by_class[c] for q in queues)
                for c in MessageClass
            },
            "shed_by_class": {
                CLASS_NAMES[c]: sum(q.shed_by_class[c] for q in queues)
                for c in MessageClass
            },
        }
        links = run.network.topology.links
        up = sum(
            1
            for a, b in links
            if b in mldp.speakers[a].sessions
            and a in mldp.speakers[b].sessions
        )
        section["holds_expired"] = mldp.holds_expired
        section["sessions"] = {
            "links": len(links),
            "up_at_end": up,
            "lost": len(mldp.sessions_lost),
            "recovered": len(mldp.sessions_recovered),
        }
    if run.shedder is not None:
        shedder = run.shedder
        section["shedding"] = {
            "fecs": [
                {
                    "prefix": e.prefix,
                    "cos": e.cos,
                    "ingress": e.ingress,
                    "shed_at_end": e.shed,
                }
                for e in shedder.entries
            ],
            "shed_events": [
                {"time": _round(t), "prefix": p, "cos": c}
                for t, p, c in shedder.shed_events
            ],
            "restore_events": [
                {"time": _round(t), "prefix": p, "cos": c}
                for t, p, c in shedder.restore_events
            ],
            "packets_shed": shedder.packets_shed,
            "recovery_time_s": _round(shedder.recovery_time_s),
        }
    if run.frr is not None:
        stats = run.frr.signaler.stats
        section["preemption"] = {
            "reroutes": stats.preempt_reroutes,
            "teardowns": stats.preempt_teardowns,
            "declined": stats.preempt_declined,
        }
    return section


def _flows_section(run: ChaosRun) -> Dict[str, Any]:
    """The gated ``flows`` report section (scenario has the key)."""
    accountant = run.flows
    section: Dict[str, Any] = dict(accountant.summary())
    section["top_talkers"] = accountant.top_talkers(5)
    collector = run.collector
    if collector is not None:
        section["matrix_snapshots"] = len(collector.matrices)
        if collector.latest is not None:
            section["final_matrix"] = collector.latest.as_dict()
        section["peak_link_utilization"] = [
            {"src": src, "dst": dst, "utilization": _round(util)}
            for (src, dst), util in sorted(
                collector.peak_utilization().items()
            )
        ]
    return section


def _security_section(run: ChaosRun) -> Dict[str, Any]:
    """The gated ``security`` report section (scenario has the key)."""
    monitor = run.security
    cfg = monitor.config
    blast_total = sorted(
        set().union(*(r.blast_fecs for r in monitor.attacks))
        if monitor.attacks
        else set()
    )
    return {
        "enabled": cfg.enabled,
        "guards": {
            "edge_guard": cfg.edge_guard,
            "authenticate": cfg.authenticate,
            "cross_check": cfg.cross_check,
            "quarantine": cfg.quarantine,
            "exception_rate": cfg.exception_rate,
            "exception_burst": cfg.exception_burst,
        },
        "attacks": [
            {
                "kind": r.kind,
                "target": r.target,
                "injected_at": _round(r.injected_at),
                "detected_at": _round(r.detected_at),
                "time_to_detect_s": _round(r.time_to_detect),
                "mitigated_at": _round(r.mitigated_at),
                "time_to_mitigate_s": _round(r.time_to_mitigate),
                "blast_radius_fecs": r.blast_radius,
                "blast_fecs": sorted(r.blast_fecs),
                "quarantined_fecs": sorted(r.quarantined_fecs),
                "packets_accepted": r.packets_accepted,
                "packets_rejected": r.packets_rejected,
                "packets_leaked": r.packets_leaked,
                "detail": r.detail,
            }
            for r in monitor.attacks
        ],
        "blast_radius_total": len(blast_total),
        "blast_fecs_total": blast_total,
        "guard_rejections": monitor.guard_rejections,
        "auth_mismatches": monitor.auth_mismatches,
        "exception_path": {
            "total": monitor.exceptions_total,
            "forwarded": monitor.exceptions_forwarded,
            "limited": monitor.exceptions_limited,
        },
        "quarantines": [
            {
                "time": _round(t),
                "node": node,
                "label": label,
                "fec": fec,
                "leaked_to": leaked_to,
            }
            for t, node, label, fec, leaked_to in monitor.quarantines
        ],
    }


def _controller_section(run: ChaosRun) -> Dict[str, Any]:
    """The gated ``controller`` report section (scenario has the key).

    Time-to-failover is how long the fastest crash-orphaned node took
    to detect the loss (hold-timer expiry minus crash time);
    time-to-readopt is the slowest resync (re-adoption minus the
    restart/heal that made it possible).  ``fecs_blackholed`` is
    cumulative over the run -- with delegation on it must stay zero.
    """
    pce = run.controller
    failovers = [
        {
            "at": _round(f["at"]),
            "node": f["node"],
            "reason": f["reason"],
            "detect_s": _round(f["detect_s"]),
            "orphaned_fecs": f["orphaned_fecs"],
            "delegated": f["delegated"],
        }
        for f in pce.failovers
    ]
    readopts = [
        {
            "at": _round(r["at"]),
            "node": r["node"],
            "reason": r["reason"],
            "rewrites": r["rewrites"],
            "restore_s": _round(r["restore_s"]),
        }
        for r in pce.readopts
    ]
    crash_detects = [
        f["detect_s"] for f in pce.failovers if f["reason"] == "crash"
    ]
    restores = [r["restore_s"] for r in pce.readopts]
    channels = [pce.channels[name] for name in sorted(pce.channels)]
    drops_by_cause: Dict[str, int] = {}
    for channel in channels:
        for cause, count in channel.drops_by_cause.items():
            drops_by_cause[cause] = drops_by_cause.get(cause, 0) + count
    return {
        "enabled": pce.config.enabled,
        "delegation": pce.config.delegation,
        "adoptions": len(pce.adoptions),
        "crashes": pce.crashes,
        "restarts": pce.restarts,
        "failovers": failovers,
        "readopts": readopts,
        "time_to_failover_s": (
            _round(min(crash_detects)) if crash_detects else None
        ),
        "time_to_readopt_s": _round(max(restores)) if restores else None,
        "fecs_orphaned": len(pce.orphaned_ever),
        "fecs_blackholed": len(pce.blackholed_ever),
        "blackholed_fecs": sorted(pce.blackholed_ever),
        "fecs_blackholed_final": len(pce.blackholed_now()),
        "resync": {
            "reads": pce.resync_reads,
            "transactions": pce.resync_transactions,
            "rewrites": pce.resync_rewrites,
        },
        "cspf": {
            "paths_computed": pce.paths_computed,
            "view_agreements": pce.view_agreements,
        },
        "channel": {
            "rpcs": sum(c.rpcs for c in channels),
            "replies": sum(c.replies for c in channels),
            "timeouts": sum(c.timeouts for c in channels),
            "drops_by_cause": dict(sorted(drops_by_cause.items())),
        },
    }


def summarize(
    run: ChaosRun, processed: int, sink=None, recorder=None
) -> ChaosReport:
    network, injector = run.network, run.injector
    sent = sum(s.sent for s in run.sources)
    if run.oam is not None or run.security is not None:
        # OAM probes and forged attack packets are deliveries too;
        # count traffic flows only so availability keeps meaning
        # delivered-traffic / sent-traffic
        delivered = sum(
            network.delivered_count(s.flow_id) for s in run.sources
        )
    else:
        delivered = network.delivered_count()
    dropped = network.drop_count()
    availability = _round(delivered / sent) if sent else None

    # packets that died inside a channel (loss, corruption, link-down
    # flush) never reach a node's drop log -- count them from the
    # channels themselves, including links that are still failed
    all_links = list(network.links.values()) + [
        link for link, _ in network._failed_links.values()
    ]
    link_lost = sum(
        ch.lost for link in all_links for ch in (link.forward, link.reverse)
    )
    link_corrupted = sum(
        ch.corrupted
        for link in all_links
        for ch in (link.forward, link.reverse)
    )

    # -- did the network become whole again? --------------------------------
    recovery_times = [
        r.recovered_at
        for r in injector.records
        if r.recovered_at is not None
    ]
    last_recovery = max(recovery_times) if recovery_times else None
    before = after = 0
    for drop in network.drops:
        if last_recovery is None or drop.time <= last_recovery:
            before += drop.count
        else:
            after += drop.count
    by_reason: Dict[str, int] = {}
    for drop in network.drops:
        reason = drop.reason.split(":")[-1].strip()
        by_reason[reason] = by_reason.get(reason, 0) + drop.count

    faults = [
        {
            "kind": r.spec.kind.value,
            "target": r.spec.label,
            "injected_at": _round(r.injected_at),
            "healed_at": _round(r.healed_at),
            "recovered_at": _round(r.recovered_at),
            "mttr_s": _round(r.mttr),
            "skipped": r.skipped,
            "detail": r.detail,
        }
        for r in injector.records
    ]
    mttrs = injector.mttr_values

    report: Dict[str, Any] = {
        "scenario": run.scenario.name,
        "seed": run.seed,
        "control": run.scenario.control,
        "hardware": run.scenario.hardware,
        "duration_s": run.scenario.duration,
        "sim_events_processed": processed,
        "traffic": {
            "sent": sent,
            "delivered": delivered,
            "dropped": dropped,
            "lost_on_links": link_lost,
            "corrupted_on_links": link_corrupted,
            "availability": availability,
        },
        "drops": {
            "before_last_recovery": before,
            "after_last_recovery": after,
            "by_reason": dict(sorted(by_reason.items())),
        },
        "faults": faults,
        "recovery": {
            "recovered": len(mttrs),
            "unrecovered": sum(
                1
                for r in injector.records
                if not r.skipped and r.mttr is None
            ),
            "mean_mttr_s": _round(sum(mttrs) / len(mttrs))
            if mttrs
            else None,
            "max_mttr_s": _round(max(mttrs)) if mttrs else None,
        },
    }

    if run.frr is not None:
        clock = STRATIX_EP1S40.clock_hz
        latencies = [s.latency_s for s in injector.switchovers]
        report["frr"] = {
            "switchovers": run.frr.switchovers,
            "reverts": len(injector.reverts),
            "switchover_latency_s": [_round(v) for v in latencies],
            "switchover_latency_cycles": [
                int(round(v * clock)) for v in latencies
            ],
        }
    if run.message_ldp is not None:
        mldp = run.message_ldp
        downtimes = [d for (_, _, _, d) in mldp.sessions_recovered]
        report["ldp_sessions"] = {
            "lost": len(mldp.sessions_lost),
            "recovered": len(mldp.sessions_recovered),
            "reconnect_attempts": mldp.reconnect_attempts,
            "abandoned": mldp.reconnects_abandoned,
            "mean_downtime_s": _round(sum(downtimes) / len(downtimes))
            if downtimes
            else None,
        }
    if run.scenario.overload is not None:
        report["overload"] = _overload_section(run)
    if run.scenario.flows is not None and run.flows is not None:
        report["flows"] = _flows_section(run)
        if run.alert_engine is not None:
            report["alerts"] = run.alert_engine.summary()
    if run.scenario.security is not None and run.security is not None:
        report["security"] = _security_section(run)
    if run.scenario.topo is not None and run.topo is not None:
        conv = run.topo.convergence()
        report["convergence"] = {
            "initial": conv["initial"],
            "disruptions": conv["disruptions"],
            "deltas": conv["deltas"],
            "snapshots": conv["snapshots"],
            "final_health": run.topo.live_view().health()["overall"],
            "verified": run.topo.verified,
            "mismatches": run.topo.mismatches,
        }
    if run.scenario.controller is not None and run.controller is not None:
        report["controller"] = _controller_section(run)
    if injector.restarts:
        restarts = []
        for restart in injector.restarts:
            window_end = (
                restart.resumed_at
                if restart.resumed_at is not None
                else run.scenario.duration
            )
            drops_at_node = sum(
                drop.count
                for drop in network.drops
                if drop.node == restart.node
                and restart.began_at <= drop.time <= window_end
            )
            restarts.append(
                {
                    "node": restart.node,
                    "began_at": _round(restart.began_at),
                    "resumed_at": _round(restart.resumed_at),
                    "hold_time_s": _round(restart.hold_time),
                    "hold_expired_at": _round(restart.hold_expired_at),
                    "stale_marked": {
                        "ilm": restart.ilm_stale_marked,
                        "ftn": restart.ftn_stale_marked,
                    },
                    "refreshed": {
                        "ilm": restart.ilm_stale_marked
                        - restart.ilm_flushed,
                        "ftn": restart.ftn_stale_marked
                        - restart.ftn_flushed,
                    },
                    "flushed": {
                        "ilm": restart.ilm_flushed,
                        "ftn": restart.ftn_flushed,
                    },
                    "stale_forwarding_s": _round(
                        restart.stale_forwarding_s
                    ),
                    "drops_at_node_during_restart": drops_at_node,
                }
            )
        report["graceful_restart"] = {
            "restarts": restarts,
            # per-flow outcome, keyed by the scenario's flow index --
            # a flow that never traverses a warm-restarting node must
            # show zero loss
            "flows": [
                {
                    "index": i,
                    "ingress": flow.ingress,
                    "egress": flow.egress,
                    "sent": source.sent,
                    "delivered": network.delivered_count(source.flow_id),
                    "lost": source.sent
                    - network.delivered_count(source.flow_id),
                }
                for i, (flow, source) in enumerate(
                    zip(run.scenario.traffic, run.sources)
                )
            ],
        }
    if run.auditor is not None:
        passes, checked, drift, repaired, alarms = run.auditor.summary()
        report["audit"] = {
            "passes": passes,
            "nodes_checked": checked,
            "drift_detected": drift,
            "repaired": repaired,
            "repair_cycles": run.auditor.repair_cycles,
            "watchdog_alarms": alarms,
            "clean": run.auditor.clean,
        }
    if injector.scrub_reports:
        report["scrub"] = {
            "runs": len(injector.scrub_reports),
            "checked": sum(r.checked for r in injector.scrub_reports),
            "corrupted": sum(r.corrupted for r in injector.scrub_reports),
            "repaired": sum(r.repaired for r in injector.scrub_reports),
            "cycles": sum(r.cycles for r in injector.scrub_reports),
            "clean": all(r.clean for r in injector.scrub_reports),
        }
    if injector.corrupted_packets:
        report["corrupted_packets"] = injector.corrupted_packets
    if run.oam is not None:
        oam_summary = run.oam.summary()
        fecs_out = []
        for entry in oam_summary["fecs"]:
            out = dict(entry)
            for key in ("rtt_min_s", "rtt_max_s", "rtt_mean_s"):
                if key in out:
                    out[key] = _round(out[key])
            out["transitions"] = [
                {"time": _round(t["time"]), "up": t["up"]}
                for t in out["transitions"]
            ]
            if out["up_at_end"] is False:
                # name the hop where the broken LSP dies (post-run
                # traceroute; safe here, the horizon has passed)
                out["localized_path"] = run.oam.localize(out["fec"]).path
            fecs_out.append(out)
        report["oam"] = {
            "period": oam_summary["period"],
            "timeout": oam_summary["timeout"],
            "slo_rtt_s": oam_summary["slo_rtt_s"],
            "fecs": fecs_out,
        }
    if recorder is not None:
        spans_summary = recorder.summary()
        spans_summary["fec_latency_quantiles"] = {
            fec: {q: _round(v) for q, v in quantiles.items()}
            for fec, quantiles in spans_summary[
                "fec_latency_quantiles"
            ].items()
        }
        report["spans"] = spans_summary
    if sink is not None:
        kinds: Dict[str, int] = {}
        for event in sink.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        report["events"] = dict(sorted(kinds.items()))
    return ChaosReport(
        report,
        recorder=recorder,
        flows=run.flows,
        collector=run.collector,
        alert_engine=run.alert_engine,
        topo=run.topo,
    )
