"""Fault scenarios: what breaks, when, and for how long.

A scenario is a declarative JSON document binding a topology, traffic,
and a control-plane flavour to a schedule of fault events.  Everything
is deterministic: explicit faults carry their own times, and the
optional randomized schedule is expanded by :meth:`Scenario.materialize`
from a caller-supplied seed, so the same (scenario, seed) pair always
produces the same schedule -- the property the chaos CLI and the soak
tests rely on.

Schema (all times in simulated seconds)::

    {
      "name": "link-flap",
      "description": "...",
      "topology": {"kind": "paper_figure1",
                   "bandwidth_bps": 10e6, "delay_s": 1e-3},
      "edges": ["ler-a", "ler-b"],
      "hardware": false,
      "control": "ldp",                    // ldp | ldp-messages | frr
      "duration": 1.0,
      "detection_delay_s": 1e-3,
      "traffic": [{"ingress": "ler-a", "egress": "ler-b",
                   "prefix": "10.2.0.0/16",
                   "src": "10.1.0.5", "dst": "10.2.0.9",
                   "rate_bps": 2e6, "packet_size": 500,
                   "start": 0.0, "stop": null}],
      "protection": [{"name": "p1", "ingress": "ler-a",
                      "egress": "ler-b"}],   // frr only
      "faults": [{"at": 0.2, "kind": "link-down",
                  "target": ["lsr-1", "lsr-2"], "heal_at": 0.6}],
      "random_faults": {"count": 6, "kinds": ["link-down"],
                        "window": [0.1, 0.7], "mean_outage": 0.05},
      "audit": {"period": 0.1, "start": 0.05},  // consistency auditor
      "oam": {"period": 0.05, "start": 0.0,     // continuous LSP pings
              "timeout": 0.05, "slo_rtt_s": 0.01}
    }

The ``oam`` key arms a :class:`~repro.control.oam.OAMMonitor` over
every traffic flow's FEC (prefix pinged from its ingress); omit it to
run without probes, keeping older reports byte-identical.

``node-restart`` faults are *warm* (graceful) restarts: the target's
control plane goes away between ``at`` and ``heal_at`` while its data
plane keeps forwarding on stale-marked tables; the fault's ``hold_time``
parameter (seconds after injection, default 0.25) sets the RFC 3478
forwarding-state holding timer after which unrefreshed entries flush.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.mpls.router import RouterRole
from repro.net.topology import (
    Topology,
    full_mesh,
    line,
    paper_figure1,
    ring,
)


class ScenarioError(ValueError):
    """A scenario document is malformed or internally inconsistent."""


class FaultKind(str, Enum):
    """The fault taxonomy, one per recoverable failure mode."""

    LINK_DOWN = "link-down"          #: adjacency out of service
    LINK_FLAP = "link-flap"          #: repeated short down/up cycles
    LINK_LOSS = "link-loss"          #: random packet loss on a link
    LINK_CORRUPT = "link-corrupt"    #: label bit errors in transit
    NODE_CRASH = "node-crash"        #: cold crash/restart of a router
    NODE_RESTART = "node-restart"    #: warm control-plane-only restart
    LDP_SESSION_DROP = "ldp-session-drop"  #: session reset + backoff
    IB_BITFLIP = "ib-bitflip"        #: SEU in the hardware info base
    SIGNALING_STORM = "signaling-storm"  #: seeded setup/hello flood
    LABEL_SPOOF = "label-spoof"      #: forged label stacks at an edge
    LDP_HIJACK = "ldp-hijack"        #: forged LDP shutdown on a session
    XCONNECT_LEAK = "xconnect-leak"  #: ILM corruption leaking a FEC
    TTL_FLOOD = "ttl-flood"          #: low-TTL exception-path storm
    CONTROLLER_CRASH = "controller-crash"  #: PCE dies, warm restarts
    CONTROLLER_PARTITION = "controller-partition"  #: channel cut to one node


#: kinds whose target is a link (two node names)
LINK_KINDS = frozenset(
    {
        FaultKind.LINK_DOWN,
        FaultKind.LINK_FLAP,
        FaultKind.LINK_LOSS,
        FaultKind.LINK_CORRUPT,
        FaultKind.LDP_SESSION_DROP,
        FaultKind.LDP_HIJACK,
    }
)

#: kinds whose target is a single node
NODE_KINDS = frozenset(
    {
        FaultKind.NODE_CRASH,
        FaultKind.NODE_RESTART,
        FaultKind.IB_BITFLIP,
        FaultKind.SIGNALING_STORM,
        FaultKind.LABEL_SPOOF,
        FaultKind.XCONNECT_LEAK,
        FaultKind.TTL_FLOOD,
    }
)

#: controller kinds: require the scenario's ``controller`` key so the
#: fault has a PCE (armed or deliberately disabled) to act on.  The
#: crash targets the literal node name ``"controller"``; the partition
#: targets the one node whose channel is cut.
CONTROLLER_KINDS = frozenset(
    {
        FaultKind.CONTROLLER_CRASH,
        FaultKind.CONTROLLER_PARTITION,
    }
)

#: adversarial kinds: require the scenario's ``security`` key so every
#: attack runs against an armed (or deliberately disarmed) monitor
SECURITY_KINDS = frozenset(
    {
        FaultKind.LABEL_SPOOF,
        FaultKind.LDP_HIJACK,
        FaultKind.XCONNECT_LEAK,
        FaultKind.TTL_FLOOD,
    }
)

#: accepted per-kind scenario params (name -> description).  This is
#: the single validation table: ``FaultSpec.from_dict`` rejects any
#: key outside it, and ``repro chaos --list-faults`` renders it, so a
#: misspelled knob (``losss=0.5``) errors instead of silently
#: vanishing into an ignored params dict.
FAULT_PARAMS: Dict[FaultKind, Dict[str, str]] = {
    FaultKind.LINK_DOWN: {},
    FaultKind.LINK_FLAP: {
        "flaps": "number of down/up cycles (default 3)",
        "period": "cycle length in seconds, 50% duty (default 0.05)",
    },
    FaultKind.LINK_LOSS: {
        "rate": "packet loss probability while active (default 0.2)",
    },
    FaultKind.LINK_CORRUPT: {
        "rate": "label bit-error probability while active (default 0.1)",
    },
    FaultKind.NODE_CRASH: {},
    FaultKind.NODE_RESTART: {
        "hold_time": "RFC 3478 forwarding-state holding timer in "
                     "seconds after injection (default 0.25)",
    },
    FaultKind.LDP_SESSION_DROP: {},
    FaultKind.IB_BITFLIP: {
        "level": "info-base level 1..3 to corrupt (default: seeded)",
        "address": "entry address within the level (default: seeded)",
        "label_xor": "XOR mask applied to the stored label (default 0)",
        "index_xor": "XOR mask applied to the stored index (default 0)",
        "op_xor": "XOR mask applied to the stored opcode (default 0)",
    },
    FaultKind.SIGNALING_STORM: {
        "mappings": "forged label mappings to flood (default 2000)",
        "hellos": "forged hellos to flood (default 100)",
        "window": "storm length in seconds when heal_at is omitted "
                  "(default 0.5)",
        "setups": "priority LSP setup bursts, frr control (default 20)",
        "bandwidth_bps": "bandwidth per burst LSP, frr control "
                         "(default 1e6)",
    },
    FaultKind.LABEL_SPOOF: {
        "packets": "forged labelled packets to inject (default 40)",
        "window": "injection window in seconds when heal_at is "
                  "omitted (default 0.5)",
        "ttl": "TTL carried by the forged stacks (default 64)",
        "src": "spoofed source address (default 203.0.113.66)",
    },
    FaultKind.LDP_HIJACK: {},
    FaultKind.XCONNECT_LEAK: {
        "victim": "FEC id whose ILM entry is corrupted (default: "
                  "first announced FEC at the target)",
        "imposter": "FEC id whose LSP receives the leaked traffic "
                    "(default: first FEC with a different egress)",
    },
    FaultKind.TTL_FLOOD: {
        "packets": "TTL=1 packets to inject (default 400)",
        "window": "flood length in seconds when heal_at is omitted "
                  "(default 0.5)",
        "src": "spoofed source address (default 203.0.113.66)",
    },
    FaultKind.CONTROLLER_CRASH: {},
    FaultKind.CONTROLLER_PARTITION: {},
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: inject at ``at``, heal at ``heal_at``.

    ``target`` is ``(a, b)`` for link-scoped kinds and ``(node,)`` for
    node-scoped ones.  ``params`` carries kind-specific knobs (loss
    ``rate``, bit-flip ``level``/``address``, flap ``flaps``/``period``).
    """

    kind: FaultKind
    at: float
    target: Tuple[str, ...]
    heal_at: Optional[float] = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        want = 2 if self.kind in LINK_KINDS else 1
        if len(self.target) != want:
            raise ScenarioError(
                f"{self.kind.value} targets {want} node(s), "
                f"got {self.target!r}"
            )
        if self.at < 0:
            raise ScenarioError(f"fault time {self.at} is negative")
        if self.heal_at is not None and self.heal_at <= self.at:
            raise ScenarioError(
                f"heal_at {self.heal_at} must come after at {self.at}"
            )

    @property
    def label(self) -> str:
        """A stable human-readable target label (``a-b`` or ``node``)."""
        return "-".join(self.target)

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FaultSpec":
        try:
            kind = FaultKind(raw["kind"])
        except KeyError:
            raise ScenarioError(f"fault entry missing 'kind': {raw!r}")
        except ValueError:
            raise ScenarioError(f"unknown fault kind {raw['kind']!r}")
        target = raw.get("target")
        if isinstance(target, str):
            target = (target,)
        elif isinstance(target, (list, tuple)):
            target = tuple(target)
        else:
            raise ScenarioError(f"fault entry missing 'target': {raw!r}")
        params = {
            k: v
            for k, v in raw.items()
            if k not in ("kind", "at", "target", "heal_at")
        }
        allowed = FAULT_PARAMS[kind]
        unknown = sorted(set(params) - set(allowed))
        if unknown:
            raise ScenarioError(
                f"{kind.value}: unknown param(s) {', '.join(unknown)} "
                f"(accepted: {', '.join(sorted(allowed)) or 'none'})"
            )
        return cls(
            kind=kind,
            at=float(raw.get("at", 0.0)),
            target=target,
            heal_at=(
                float(raw["heal_at"]) if raw.get("heal_at") is not None
                else None
            ),
            params=params,
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind.value,
            "at": self.at,
            "target": list(self.target),
        }
        if self.heal_at is not None:
            out["heal_at"] = self.heal_at
        out.update(self.params)
        return out


@dataclass
class TrafficSpec:
    """One CBR flow across the domain."""

    ingress: str
    egress: str
    prefix: str
    src: str
    dst: str
    rate_bps: float = 1e6
    packet_size: int = 500
    start: float = 0.0
    stop: Optional[float] = None
    #: class of service, 0 (lowest) .. 7; ingress load shedding sheds
    #: the lowest-CoS FECs first
    cos: int = 0

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "TrafficSpec":
        try:
            return cls(
                ingress=raw["ingress"],
                egress=raw["egress"],
                prefix=raw["prefix"],
                src=raw["src"],
                dst=raw["dst"],
                rate_bps=float(raw.get("rate_bps", 1e6)),
                packet_size=int(raw.get("packet_size", 500)),
                start=float(raw.get("start", 0.0)),
                cos=int(raw.get("cos", 0)),
                stop=(
                    float(raw["stop"]) if raw.get("stop") is not None
                    else None
                ),
            )
        except KeyError as exc:
            raise ScenarioError(f"traffic entry missing {exc}")


@dataclass
class RandomFaultSpec:
    """A seeded randomized fault schedule, expanded at materialize time."""

    count: int
    kinds: List[FaultKind]
    window: Tuple[float, float]
    mean_outage: float = 0.05
    #: restrict link faults to these links / node faults to these nodes
    targets: Optional[List[Tuple[str, ...]]] = None

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "RandomFaultSpec":
        kinds = [FaultKind(k) for k in raw.get("kinds", ["link-down"])]
        window = tuple(float(t) for t in raw.get("window", (0.0, 1.0)))
        if len(window) != 2 or window[1] <= window[0]:
            raise ScenarioError(f"bad random window {window!r}")
        targets = raw.get("targets")
        if targets is not None:
            targets = [
                (t,) if isinstance(t, str) else tuple(t) for t in targets
            ]
        return cls(
            count=int(raw.get("count", 4)),
            kinds=kinds,
            window=window,  # type: ignore[arg-type]
            mean_outage=float(raw.get("mean_outage", 0.05)),
            targets=targets,
        )


_TOPOLOGY_BUILDERS = {
    "paper_figure1": paper_figure1,
    "ring": ring,
    "line": line,
    "full_mesh": full_mesh,
}


@dataclass
class Scenario:
    """A complete chaos scenario: network + traffic + fault schedule."""

    name: str
    topology: Mapping[str, Any]
    traffic: List[TrafficSpec]
    description: str = ""
    edges: Optional[List[str]] = None
    hardware: bool = False
    control: str = "ldp"  # "ldp" | "ldp-messages" | "frr"
    duration: float = 1.0
    detection_delay_s: float = 1e-3
    protection: List[Mapping[str, Any]] = field(default_factory=list)
    faults: List[FaultSpec] = field(default_factory=list)
    random_faults: Optional[RandomFaultSpec] = None
    #: consistency-auditor configuration ({"period": s, "start": s}),
    #: or None to run without the auditor
    audit: Optional[Mapping[str, Any]] = None
    #: OAM monitor configuration ({"period": s, "start": s,
    #: "timeout": s, "slo_rtt_s": s}), or None to run without probes
    oam: Optional[Mapping[str, Any]] = None
    #: control-plane overload protection (see
    #: :class:`repro.control.overload.OverloadConfig`), or None to run
    #: with the legacy unbounded control plane
    overload: Optional[Mapping[str, Any]] = None
    #: flow accounting / traffic-matrix configuration
    #: ({"active_timeout": s, "idle_timeout": s, "capacity": n,
    #: "matrix_period": s, "matrix_start": s}), or None to run without
    #: the accountant (older reports stay byte-identical)
    flows: Optional[Mapping[str, Any]] = None
    #: alerting rules ({"rules": [{"name", "signal", "threshold",
    #: "clear", "description"}, ...]}), or None for no alert engine;
    #: requires ``flows`` (the engine evaluates on the collector tick)
    alerts: Optional[Mapping[str, Any]] = None
    #: adversarial-security configuration (see
    #: :class:`repro.security.SecurityConfig`), or None to run without
    #: the monitor; required by the attack fault kinds and gates the
    #: report's ``security`` section (older reports stay byte-identical)
    security: Optional[Mapping[str, Any]] = None
    #: topology-observatory configuration ({"snapshot_every": n}), or
    #: None to run without the observer; gates the report's
    #: ``convergence`` section (older reports stay byte-identical)
    topo: Optional[Mapping[str, Any]] = None
    #: centralized PCE controller configuration (see
    #: :class:`repro.control.controller.ControllerConfig`), or None to
    #: run pure distributed control; required by the controller fault
    #: kinds and gates the report's ``controller`` section (older
    #: reports stay byte-identical)
    controller: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        if self.control not in ("ldp", "ldp-messages", "frr"):
            raise ScenarioError(f"unknown control plane {self.control!r}")
        if self.duration <= 0:
            raise ScenarioError("duration must be positive")
        if not self.traffic:
            raise ScenarioError("a scenario needs at least one flow")
        if self.control == "frr" and not self.protection:
            raise ScenarioError("frr control needs a 'protection' list")
        if self.alerts is not None and self.flows is None:
            raise ScenarioError(
                "'alerts' needs 'flows': the alert engine is evaluated "
                "on the traffic-matrix collector tick"
            )
        attack_kinds = {
            s.kind for s in self.faults if s.kind in SECURITY_KINDS
        }
        if self.random_faults is not None:
            attack_kinds |= {
                k for k in self.random_faults.kinds if k in SECURITY_KINDS
            }
        if attack_kinds and self.security is None:
            names = ", ".join(sorted(k.value for k in attack_kinds))
            raise ScenarioError(
                f"'{names}' faults need a 'security' key: adversarial "
                "faults are measured against the security monitor's "
                "guards (set \"enabled\": false to run them unmitigated)"
            )
        controller_kinds = {
            s.kind for s in self.faults if s.kind in CONTROLLER_KINDS
        }
        if self.random_faults is not None:
            controller_kinds |= {
                k
                for k in self.random_faults.kinds
                if k in CONTROLLER_KINDS
            }
        if controller_kinds and self.controller is None:
            names = ", ".join(sorted(k.value for k in controller_kinds))
            raise ScenarioError(
                f"'{names}' faults need a 'controller' key: controller "
                "faults act on the PCE and its node channels (set "
                "\"enabled\": false to run them against a dark "
                "controller)"
            )

    # -- construction -------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "Scenario":
        faults = [FaultSpec.from_dict(f) for f in raw.get("faults", [])]
        rand = raw.get("random_faults")
        return cls(
            name=raw.get("name", "unnamed"),
            description=raw.get("description", ""),
            topology=dict(raw.get("topology", {"kind": "paper_figure1"})),
            edges=raw.get("edges"),
            hardware=bool(raw.get("hardware", False)),
            control=raw.get("control", "ldp"),
            duration=float(raw.get("duration", 1.0)),
            detection_delay_s=float(raw.get("detection_delay_s", 1e-3)),
            traffic=[TrafficSpec.from_dict(t) for t in raw["traffic"]]
            if raw.get("traffic")
            else [],
            protection=list(raw.get("protection", [])),
            faults=faults,
            random_faults=(
                RandomFaultSpec.from_dict(rand) if rand else None
            ),
            audit=(
                dict(raw["audit"]) if raw.get("audit") is not None else None
            ),
            oam=(
                dict(raw["oam"]) if raw.get("oam") is not None else None
            ),
            overload=(
                dict(raw["overload"])
                if raw.get("overload") is not None
                else None
            ),
            flows=(
                dict(raw["flows"]) if raw.get("flows") is not None else None
            ),
            alerts=(
                dict(raw["alerts"]) if raw.get("alerts") is not None else None
            ),
            security=(
                dict(raw["security"])
                if raw.get("security") is not None
                else None
            ),
            topo=(
                dict(raw["topo"]) if raw.get("topo") is not None else None
            ),
            controller=(
                dict(raw["controller"])
                if raw.get("controller") is not None
                else None
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"scenario is not valid JSON: {exc}")
        return cls.from_dict(raw)

    @classmethod
    def load(cls, path: str) -> "Scenario":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- topology -----------------------------------------------------------
    def build_topology(self) -> Tuple[Topology, Dict[str, RouterRole]]:
        """Instantiate the topology and its LER role map."""
        spec = dict(self.topology)
        kind = spec.pop("kind", "paper_figure1")
        builder = _TOPOLOGY_BUILDERS.get(kind)
        if builder is None:
            raise ScenarioError(f"unknown topology kind {kind!r}")
        topo = builder(**spec)
        edges = self.edges
        if edges is None:
            if kind == "paper_figure1":
                edges = ["ler-a", "ler-b"]
            else:
                # line/ring/mesh: traffic endpoints are the edges
                edges = sorted(
                    {t.ingress for t in self.traffic}
                    | {t.egress for t in self.traffic}
                )
        for name in edges:
            if name not in topo.nodes:
                raise ScenarioError(f"edge {name!r} is not in the topology")
        roles = {name: RouterRole.LER for name in edges}
        return topo, roles

    # -- schedule expansion -------------------------------------------------
    def materialize(self, seed: int) -> List[FaultSpec]:
        """The full fault schedule: explicit faults (flaps expanded)
        plus the seeded randomized schedule, sorted by injection time."""
        schedule: List[FaultSpec] = []
        for spec in self.faults:
            if spec.kind is FaultKind.LINK_FLAP:
                schedule.extend(_expand_flap(spec))
            else:
                schedule.append(spec)
        if self.random_faults is not None:
            topo, _ = self.build_topology()
            schedule.extend(
                _random_schedule(
                    self.random_faults, topo, self, seed, schedule
                )
            )
        schedule.sort(key=lambda s: (s.at, s.kind.value, s.target))
        return schedule


def _expand_flap(spec: FaultSpec) -> List[FaultSpec]:
    """A flap is sugar for ``flaps`` short link-down/up cycles, each
    ``period`` long with a 50% duty cycle."""
    flaps = int(spec.params.get("flaps", 3))
    period = float(spec.params.get("period", 0.05))
    if flaps < 1 or period <= 0:
        raise ScenarioError(f"bad flap parameters in {spec!r}")
    return [
        FaultSpec(
            kind=FaultKind.LINK_DOWN,
            at=round(spec.at + i * period, 9),
            target=spec.target,
            heal_at=round(spec.at + i * period + period / 2, 9),
        )
        for i in range(flaps)
    ]


def _random_schedule(
    rand: RandomFaultSpec,
    topology: Topology,
    scenario: Scenario,
    seed: int,
    existing: Optional[List[FaultSpec]] = None,
) -> List[FaultSpec]:
    """Expand a randomized schedule deterministically from ``seed``.

    Draws are rejected when they would overlap an existing outage on
    the same target -- whether from an earlier draw or from the
    scenario's explicit faults (concurrent faults on one link/node
    would make heal bookkeeping ambiguous) -- with a bounded retry
    budget so the expansion always terminates.
    """
    rng = random.Random((seed << 8) ^ 0xFA17)
    links = sorted(
        tuple(sorted((a, b)))
        for a, b, _ in topology.edges_with_attrs()
    )
    edge_names = {t.ingress for t in scenario.traffic} | {
        t.egress for t in scenario.traffic
    }
    core = sorted(set(topology.nodes) - edge_names)
    busy: Dict[Tuple[str, ...], List[Tuple[float, float]]] = {}
    for spec in existing or []:
        key = tuple(sorted(spec.target))
        hi = spec.heal_at if spec.heal_at is not None else scenario.duration
        busy.setdefault(key, []).append((spec.at, hi))
    out: List[FaultSpec] = []
    attempts = 0
    while len(out) < rand.count and attempts < rand.count * 20:
        attempts += 1
        kind = rng.choice(sorted(rand.kinds, key=lambda k: k.value))
        if rand.targets is not None:
            target = tuple(rng.choice(rand.targets))
        elif kind in SECURITY_KINDS:
            # adversarial kinds need explicit targets: the edge/link
            # choice is part of the attack, not a random draw
            continue
        elif kind in LINK_KINDS:
            target = rng.choice(links)
        elif (
            kind
            in (
                FaultKind.NODE_CRASH,
                FaultKind.NODE_RESTART,
                FaultKind.SIGNALING_STORM,
            )
            and core
        ):
            target = (rng.choice(core),)
        else:  # node-scoped with no core nodes: nothing safe to break
            continue
        at = round(rng.uniform(*rand.window), 6)
        outage = max(rand.mean_outage / 10.0,
                     rng.expovariate(1.0 / rand.mean_outage))
        heal_at = round(min(at + outage, rand.window[1] + outage), 6)
        if heal_at <= at:
            continue
        intervals = busy.setdefault(target, [])
        if any(at < hi and heal_at > lo for lo, hi in intervals):
            continue  # overlaps an existing outage on this target
        intervals.append((at, heal_at))
        params: Dict[str, Any] = {}
        if kind is FaultKind.LINK_LOSS:
            params["rate"] = round(rng.uniform(0.05, 0.4), 3)
        elif kind is FaultKind.LINK_CORRUPT:
            params["rate"] = round(rng.uniform(0.05, 0.3), 3)
        out.append(
            FaultSpec(
                kind=kind, at=at, target=target,
                heal_at=heal_at, params=params,
            )
        )
    return out
