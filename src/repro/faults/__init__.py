"""Deterministic fault injection (the chaos subsystem).

Declarative :class:`~repro.faults.scenario.Scenario` documents schedule
faults across every layer of the reproduction -- link failures and
flaps, packet loss and label corruption, node crash/restart, LDP
session resets, and information-base bit flips -- and a
:class:`~repro.faults.injector.FaultInjector` executes them against a
running :class:`~repro.net.network.MPLSNetwork`, coordinating FRR
switchover, LDP reconvergence/reconnection, graceful (warm) restarts
with RFC 3478-style hold timers, and hardware scrubbing after a
configurable detection delay.  A
:class:`~repro.faults.auditor.ConsistencyAuditor` can ride along,
periodically cross-checking hardware info bases against the
control-plane tables and repairing drift.
:func:`~repro.faults.chaos.run_scenario` wraps the whole lifecycle
into one byte-deterministic report.
"""

from repro.faults.auditor import AuditRecord, ConsistencyAuditor
from repro.faults.chaos import (
    ChaosReport,
    ChaosRun,
    build_run,
    run_scenario,
)
from repro.faults.injector import (
    FaultInjector,
    FaultRecord,
    RestartRecord,
    SwitchoverRecord,
)
from repro.faults.scenario import (
    FaultKind,
    FaultSpec,
    RandomFaultSpec,
    Scenario,
    ScenarioError,
    TrafficSpec,
)

__all__ = [
    "AuditRecord",
    "ChaosReport",
    "ChaosRun",
    "ConsistencyAuditor",
    "FaultInjector",
    "FaultKind",
    "FaultRecord",
    "RandomFaultSpec",
    "RestartRecord",
    "Scenario",
    "ScenarioError",
    "SwitchoverRecord",
    "TrafficSpec",
    "FaultSpec",
    "build_run",
    "run_scenario",
]
