"""Deterministic fault injection (the chaos subsystem).

Declarative :class:`~repro.faults.scenario.Scenario` documents schedule
faults across every layer of the reproduction -- link failures and
flaps, packet loss and label corruption, node crash/restart, LDP
session resets, and information-base bit flips -- and a
:class:`~repro.faults.injector.FaultInjector` executes them against a
running :class:`~repro.net.network.MPLSNetwork`, coordinating FRR
switchover, LDP reconvergence/reconnection, and hardware scrubbing
after a configurable detection delay.  :func:`~repro.faults.chaos.run_scenario`
wraps the whole lifecycle into one byte-deterministic report.
"""

from repro.faults.chaos import (
    ChaosReport,
    ChaosRun,
    build_run,
    run_scenario,
)
from repro.faults.injector import (
    FaultInjector,
    FaultRecord,
    SwitchoverRecord,
)
from repro.faults.scenario import (
    FaultKind,
    FaultSpec,
    RandomFaultSpec,
    Scenario,
    ScenarioError,
    TrafficSpec,
)

__all__ = [
    "ChaosReport",
    "ChaosRun",
    "FaultInjector",
    "FaultKind",
    "FaultRecord",
    "RandomFaultSpec",
    "Scenario",
    "ScenarioError",
    "SwitchoverRecord",
    "TrafficSpec",
    "FaultSpec",
    "build_run",
    "run_scenario",
]
