"""FaultInjector: executes a fault schedule against a live network.

The injector owns the inject/heal lifecycle of every fault: it drives
the data plane (:class:`~repro.net.network.MPLSNetwork` link/node
failures, channel loss/corruption), notifies whichever control planes
are attached after a configurable *detection delay* (FRR switchover,
LDP reconvergence, session teardown), and records a
:class:`FaultRecord` per fault with injection/heal/recovery times so
MTTR can be reported.

It also keeps an authoritative up/down timeline per link and node
(:meth:`link_was_up` / :meth:`node_was_up`) -- the soak tests use it to
assert that no packet was ever forwarded over a link that was down at
decision time.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.scenario import (
    CONTROLLER_KINDS,
    SECURITY_KINDS,
    FaultKind,
    FaultSpec,
    Scenario,
    ScenarioError,
)
from repro.mpls.label import LabelEntry
from repro.mpls.stack import LabelStack
from repro.net.packet import IPv4Packet, MPLSPacket
from repro.obs.events import FaultHealed, FaultInjected, StaleEntriesFlushed
from repro.obs.telemetry import get_telemetry


@dataclass
class FaultRecord:
    """The observed lifecycle of one injected fault."""

    spec: FaultSpec
    injected_at: float
    healed_at: Optional[float] = None
    #: when the control plane finished recovering (switchover done,
    #: tables reconverged, session re-established, info base scrubbed)
    recovered_at: Optional[float] = None
    detail: str = ""
    skipped: bool = False

    @property
    def mttr(self) -> Optional[float]:
        """Mean-time-to-repair contribution: inject -> full recovery."""
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.injected_at


@dataclass
class RestartRecord:
    """One graceful (warm) restart: the RFC 3478-style lifecycle.

    The control plane at ``node`` went away at ``began_at`` and its
    forwarding state was preserved and stale-marked; it resumed at
    ``resumed_at`` (refreshing still-valid entries in place), and the
    forwarding-state holding timer expired at ``hold_expired_at``,
    flushing whatever was never refreshed.
    """

    node: str
    began_at: float
    hold_time: float
    ilm_stale_marked: int = 0
    ftn_stale_marked: int = 0
    resumed_at: Optional[float] = None
    #: entries still stale right after the post-restart reconvergence
    #: (converged LDP only; message LDP refreshes over simulated time)
    ilm_still_stale: Optional[int] = None
    ftn_still_stale: Optional[int] = None
    hold_expired_at: Optional[float] = None
    ilm_flushed: int = 0
    ftn_flushed: int = 0

    @property
    def stale_forwarding_s(self) -> Optional[float]:
        """How long packets were switched on stale-marked entries:
        until the resume refreshed everything, or until the hold timer
        flushed what the refresh never reclaimed."""
        if self.resumed_at is not None and not (
            self.ilm_flushed or self.ftn_flushed
        ):
            return self.resumed_at - self.began_at
        if self.hold_expired_at is not None:
            return self.hold_expired_at - self.began_at
        return None


@dataclass
class SwitchoverRecord:
    """One FRR switchover triggered by an injected failure."""

    time: float
    link: Tuple[str, str]
    paths: List[str] = field(default_factory=list)
    #: failure injection -> FTN rewritten (the detection delay plus
    #: the constant-time switchover itself, which is instantaneous in
    #: simulated time: a single FTN write)
    latency_s: float = 0.0


class FaultInjector:
    """Schedules and executes the faults of a :class:`Scenario`.

    Parameters
    ----------
    network:
        The running domain whose scheduler times everything.
    ldp:
        Optional converged :class:`~repro.control.ldp.LDPProcess`;
        reconverged after each detected topology change.
    message_ldp:
        Optional :class:`~repro.control.ldp_sessions.MessageLDPProcess`;
        its sessions are dropped on link/node faults and by
        ``ldp-session-drop`` (reconnection is the process's own
        backoff machinery).
    frr:
        Optional :class:`~repro.control.frr.FastRerouteManager`;
        told about link failures/recoveries after the detection delay.
    detection_delay_s:
        How long the control plane takes to notice a data-plane fault
        (loss-of-light / BFD stand-in).  Heals are detected after the
        same delay.
    seed:
        Seeds the injector's private RNG (bit positions for
        corruption/bit-flips); independent of the schedule's seed.
    security:
        Optional :class:`~repro.security.SecurityMonitor`; required by
        the adversarial fault kinds, which account every forged input
        through it (and are measured against its guards).
    controller:
        Optional :class:`~repro.control.controller.PCEController`;
        required by the controller fault kinds, which crash it or cut
        its per-node channels.
    """

    def __init__(
        self,
        network,
        ldp=None,
        message_ldp=None,
        frr=None,
        detection_delay_s: float = 1e-3,
        seed: int = 0,
        security=None,
        controller=None,
    ) -> None:
        self.network = network
        self.scheduler = network.scheduler
        self.ldp = ldp
        self.message_ldp = message_ldp
        self.frr = frr
        self.security = security
        self.controller = controller
        self.detection_delay_s = detection_delay_s
        self.rng = random.Random((seed << 4) ^ 0xB17F11B)
        self.records: List[FaultRecord] = []
        self.restarts: List[RestartRecord] = []
        self._restarting: Dict[str, RestartRecord] = {}
        self.switchovers: List[SwitchoverRecord] = []
        self.reverts: List[Tuple[float, str]] = []
        self.scrub_reports: List[Any] = []
        self.corrupted_packets = 0
        #: link key -> [(time, up)] transition log (True = came up)
        self._link_log: Dict[Tuple[str, str], List[Tuple[float, bool]]] = {}
        self._node_log: Dict[str, List[Tuple[float, bool]]] = {}

    # -- schedule ----------------------------------------------------------
    def apply(self, scenario: Scenario, seed: int = 0) -> List[FaultSpec]:
        """Materialize the scenario's schedule and arm every fault."""
        schedule = scenario.materialize(seed)
        for spec in schedule:
            self._validate(spec, scenario)
        for spec in schedule:
            self.schedule_fault(spec)
        return schedule

    def _validate(self, spec: FaultSpec, scenario: Scenario) -> None:
        if spec.kind in CONTROLLER_KINDS:
            if self.controller is None:
                raise ScenarioError(
                    f"{spec.kind.value} needs a PCE controller "
                    "(scenario 'controller' key)"
                )
            if spec.kind is FaultKind.CONTROLLER_CRASH:
                if spec.target != ("controller",):
                    raise ScenarioError(
                        "controller-crash targets the controller "
                        "itself: use \"target\": [\"controller\"]"
                    )
            elif spec.target[0] not in self.network.nodes:
                raise ScenarioError(
                    f"controller-partition targets unknown node "
                    f"{spec.target[0]!r}"
                )
            return
        for node in spec.target:
            if node not in self.network.nodes:
                raise ScenarioError(
                    f"{spec.kind.value} targets unknown node {node!r}"
                )
        if spec.kind is FaultKind.LDP_SESSION_DROP and self.message_ldp is None:
            raise ScenarioError(
                "ldp-session-drop needs control = 'ldp-messages'"
            )
        if (
            spec.kind is FaultKind.NODE_RESTART
            and self.ldp is None
            and self.message_ldp is None
        ):
            raise ScenarioError(
                "node-restart (graceful restart) needs control = "
                "'ldp' or 'ldp-messages'"
            )
        if spec.kind is FaultKind.IB_BITFLIP:
            node = self.network.nodes[spec.target[0]]
            if not hasattr(node, "modifier"):
                raise ScenarioError(
                    f"ib-bitflip targets software node {spec.target[0]!r}; "
                    "set \"hardware\": true"
                )
        if (
            spec.kind is FaultKind.SIGNALING_STORM
            and self.message_ldp is None
            and self.frr is None
        ):
            raise ScenarioError(
                "signaling-storm needs control = 'ldp-messages' or 'frr'"
            )
        if spec.kind in SECURITY_KINDS:
            if self.message_ldp is None:
                raise ScenarioError(
                    f"{spec.kind.value} needs control = 'ldp-messages'"
                )
            if self.security is None:
                raise ScenarioError(
                    f"{spec.kind.value} needs a security monitor "
                    "(scenario 'security' key)"
                )
        if spec.kind in (FaultKind.LABEL_SPOOF, FaultKind.TTL_FLOOD):
            node = self.network.nodes[spec.target[0]]
            if not getattr(node, "is_edge", False):
                raise ScenarioError(
                    f"{spec.kind.value} targets {spec.target[0]!r}, "
                    "which is not an edge LER: forged traffic enters "
                    "over the trust boundary"
                )
        if spec.kind is FaultKind.TTL_FLOOD and not getattr(
            self.message_ldp, "queues", None
        ):
            raise ScenarioError(
                "ttl-flood needs an 'overload' key: the exception path "
                "lands in the bounded control queues"
            )

    def schedule_fault(self, spec: FaultSpec) -> FaultRecord:
        """Arm one fault's inject (and heal, if any) on the scheduler."""
        record = FaultRecord(spec=spec, injected_at=spec.at)
        self.records.append(record)
        self.scheduler.at(spec.at, lambda: self._inject(record))
        if spec.heal_at is not None:
            self.scheduler.at(spec.heal_at, lambda: self._heal(record))
        return record

    # -- injection ---------------------------------------------------------
    def _inject(self, record: FaultRecord) -> None:
        spec = record.spec
        record.injected_at = self.scheduler.now
        handler = {
            FaultKind.LINK_DOWN: self._inject_link_down,
            FaultKind.LINK_LOSS: self._inject_link_loss,
            FaultKind.LINK_CORRUPT: self._inject_link_corrupt,
            FaultKind.NODE_CRASH: self._inject_node_crash,
            FaultKind.NODE_RESTART: self._inject_node_restart,
            FaultKind.LDP_SESSION_DROP: self._inject_session_drop,
            FaultKind.IB_BITFLIP: self._inject_bitflip,
            FaultKind.SIGNALING_STORM: self._inject_signaling_storm,
            FaultKind.LABEL_SPOOF: self._inject_label_spoof,
            FaultKind.LDP_HIJACK: self._inject_ldp_hijack,
            FaultKind.XCONNECT_LEAK: self._inject_xconnect_leak,
            FaultKind.TTL_FLOOD: self._inject_ttl_flood,
            FaultKind.CONTROLLER_CRASH: self._inject_controller_crash,
            FaultKind.CONTROLLER_PARTITION: (
                self._inject_controller_partition
            ),
        }[spec.kind]
        handler(record)
        tel = get_telemetry()
        if tel.enabled:
            tel.faults.labels(spec.kind.value, spec.label).inc()
            event = FaultInjected(
                fault=spec.kind.value, target=spec.label,
                detail=record.detail,
            )
            event.time = self.scheduler.now
            tel.events.emit(event)

    def _heal(self, record: FaultRecord) -> None:
        if record.skipped:
            return
        spec = record.spec
        record.healed_at = self.scheduler.now
        {
            FaultKind.LINK_DOWN: self._heal_link_down,
            FaultKind.LINK_LOSS: self._heal_link_loss,
            FaultKind.LINK_CORRUPT: self._heal_link_corrupt,
            FaultKind.NODE_CRASH: self._heal_node_crash,
            FaultKind.NODE_RESTART: self._heal_node_restart,
            FaultKind.LDP_SESSION_DROP: self._heal_noop,
            FaultKind.IB_BITFLIP: self._heal_bitflip,
            FaultKind.SIGNALING_STORM: self._heal_signaling_storm,
            FaultKind.LABEL_SPOOF: self._recovered,
            FaultKind.LDP_HIJACK: self._heal_noop,
            FaultKind.XCONNECT_LEAK: self._heal_noop,
            FaultKind.TTL_FLOOD: self._heal_ttl_flood,
            FaultKind.CONTROLLER_CRASH: self._heal_controller_crash,
            FaultKind.CONTROLLER_PARTITION: self._heal_controller_partition,
        }[spec.kind](record)
        tel = get_telemetry()
        if tel.enabled:
            event = FaultHealed(
                fault=spec.kind.value,
                target=spec.label,
                downtime=record.healed_at - record.injected_at,
                detail=record.detail,
            )
            event.time = self.scheduler.now
            tel.events.emit(event)

    def _recovered(self, record: FaultRecord) -> None:
        record.recovered_at = self.scheduler.now
        tel = get_telemetry()
        if tel.enabled and record.mttr is not None:
            tel.fault_recovery.labels(record.spec.kind.value).observe(
                record.mttr
            )

    # -- link down/up ------------------------------------------------------
    def _inject_link_down(self, record: FaultRecord) -> None:
        a, b = record.spec.target
        if (a, b) not in self.network._link_of:
            record.skipped = True
            record.detail = "link already down"
            return
        self.network.fail_link(a, b)
        self._mark_link(a, b, up=False)
        self.scheduler.after(
            self.detection_delay_s,
            lambda: self._link_loss_detected(a, b, record),
        )

    def _link_loss_detected(self, a: str, b: str, record: FaultRecord) -> None:
        if self.frr is not None:
            repaired = self.frr.handle_link_failure(a, b)
            if repaired:
                self.switchovers.append(
                    SwitchoverRecord(
                        time=self.scheduler.now,
                        link=(a, b),
                        paths=repaired,
                        latency_s=self.scheduler.now - record.injected_at,
                    )
                )
        if self.ldp is not None:
            self.ldp.reconverge()
        if self.message_ldp is not None:
            self.message_ldp.drop_session(a, b, reason=f"link {a}-{b} down")

    def _heal_link_down(self, record: FaultRecord) -> None:
        a, b = record.spec.target
        self.network.restore_link(a, b)
        self._mark_link(a, b, up=True)
        self.scheduler.after(
            self.detection_delay_s,
            lambda: self._link_heal_detected(a, b, record),
        )

    def _link_heal_detected(self, a: str, b: str, record: FaultRecord) -> None:
        if self.frr is not None:
            for name in self.frr.handle_link_recovery(a, b):
                self.reverts.append((self.scheduler.now, name))
        if self.ldp is not None:
            self.ldp.reconverge()
        # message LDP re-establishes on its own via the backoff retries
        self._recovered(record)

    # -- link loss / corruption -------------------------------------------
    def _inject_link_loss(self, record: FaultRecord) -> None:
        a, b = record.spec.target
        if (a, b) not in self.network._link_of:
            record.skipped = True
            record.detail = "link is down; loss not applied"
            return
        link = self.network.link(a, b)
        rate = float(record.spec.params.get("rate", 0.2))
        record.detail = f"loss rate {rate}"
        link.set_loss(rate)

    def _heal_link_loss(self, record: FaultRecord) -> None:
        a, b = record.spec.target
        self.network.link(a, b).set_loss(0.0)
        self._recovered(record)

    def _inject_link_corrupt(self, record: FaultRecord) -> None:
        a, b = record.spec.target
        if (a, b) not in self.network._link_of:
            record.skipped = True
            record.detail = "link is down; corruption not applied"
            return
        link = self.network.link(a, b)
        rate = float(record.spec.params.get("rate", 0.1))
        record.detail = f"corruption rate {rate}"
        link.set_corruption(rate, corruptor=self._corrupt_packet)

    def _heal_link_corrupt(self, record: FaultRecord) -> None:
        a, b = record.spec.target
        self.network.link(a, b).set_corruption(0.0, corruptor=None)
        self._recovered(record)

    def _corrupt_packet(self, packet):
        """Flip one bit in the top label; unlabelled packets are
        damaged beyond use (returned as None, a loss)."""
        if isinstance(packet, MPLSPacket) and not packet.stack.is_empty:
            self.corrupted_packets += 1
            top = packet.stack.top
            flipped = dataclasses.replace(
                top, label=top.label ^ (1 << self.rng.randrange(20))
            )
            entries = (flipped,) + packet.stack.entries[1:]
            return packet.with_stack(type(packet.stack)(entries))
        return None

    # -- node crash/restart -----------------------------------------------
    def _inject_node_crash(self, record: FaultRecord) -> None:
        name = record.spec.target[0]
        if name in self.network._down_nodes:
            record.skipped = True
            record.detail = "node already down"
            return
        self.network.fail_node(name)
        self._mark_node(name, up=False)
        incident = self.network._down_nodes[name]
        for a, b in incident:
            self._mark_link(a, b, up=False)
        record.detail = f"{len(incident)} links down"
        if self.ldp is not None:
            self.ldp.down_nodes.add(name)
        self.scheduler.after(
            self.detection_delay_s,
            lambda: self._crash_detected(name, incident, record),
        )

    def _crash_detected(
        self,
        name: str,
        incident: List[Tuple[str, str]],
        record: FaultRecord,
    ) -> None:
        if self.frr is not None:
            for a, b in incident:
                repaired = self.frr.handle_link_failure(a, b)
                if repaired:
                    self.switchovers.append(
                        SwitchoverRecord(
                            time=self.scheduler.now,
                            link=(a, b),
                            paths=repaired,
                            latency_s=(
                                self.scheduler.now - record.injected_at
                            ),
                        )
                    )
        if self.ldp is not None:
            self.ldp.reconverge()
        if self.message_ldp is not None:
            for a, b in incident:
                self.message_ldp.drop_session(
                    a, b, reason=f"node {name} down"
                )

    def _heal_node_crash(self, record: FaultRecord) -> None:
        name = record.spec.target[0]
        # restore_node reports the links it actually brought back: a
        # link shared with a still-crashed neighbour stays down and is
        # restored by that neighbour's own restart, so it must not be
        # marked up (or announced to FRR) here
        restored = self.network.restore_node(name)
        self._mark_node(name, up=True)
        for a, b in restored:
            self._mark_link(a, b, up=True)
        if self.ldp is not None:
            self.ldp.down_nodes.discard(name)
        self.scheduler.after(
            self.detection_delay_s,
            lambda: self._restart_detected(name, restored, record),
        )

    def _restart_detected(
        self,
        name: str,
        restored: List[Tuple[str, str]],
        record: FaultRecord,
    ) -> None:
        if self.ldp is not None:
            # the cold restart cleared the node's tables; reconvergence
            # re-programs them (and everyone routing through the node)
            self.ldp.reconverge()
        if self.frr is not None:
            for a, b in restored:
                for path in self.frr.handle_link_recovery(a, b):
                    self.reverts.append((self.scheduler.now, path))
        self._recovered(record)

    # -- graceful (warm) restart -------------------------------------------
    def _inject_node_restart(self, record: FaultRecord) -> None:
        name = record.spec.target[0]
        if name in self.network._down_nodes or name in self._restarting:
            record.skipped = True
            record.detail = "node already down or restarting"
            return
        hold_time = float(record.spec.params.get("hold_time", 0.25))
        if self.ldp is not None:
            ilm_marked, ftn_marked = self.ldp.begin_graceful_restart(name)
        else:
            ilm_marked, ftn_marked = (
                self.message_ldp.begin_graceful_restart(name)
            )
        restart = RestartRecord(
            node=name,
            began_at=self.scheduler.now,
            hold_time=hold_time,
            ilm_stale_marked=ilm_marked,
            ftn_stale_marked=ftn_marked,
        )
        self.restarts.append(restart)
        self._restarting[name] = restart
        record.detail = (
            f"warm restart; {ilm_marked}+{ftn_marked} entries "
            f"stale-marked, hold timer {hold_time}s"
        )
        tel = get_telemetry()
        if tel.enabled:
            tel.stale_entries.labels(name, "ilm").set(ilm_marked)
            tel.stale_entries.labels(name, "ftn").set(ftn_marked)
        self.scheduler.after(
            hold_time, lambda: self._hold_expired(restart)
        )

    def _heal_node_restart(self, record: FaultRecord) -> None:
        name = record.spec.target[0]
        restart = self._restarting.pop(name, None)
        if restart is None:
            return
        if self.ldp is not None:
            still_ilm, still_ftn = self.ldp.complete_graceful_restart(name)
            restart.ilm_still_stale = still_ilm
            restart.ftn_still_stale = still_ftn
            record.detail += (
                f"; resumed, {still_ilm}+{still_ftn} entries await flush"
            )
        else:
            # the message process re-discovers its peers; refreshes
            # arrive as sessions re-form over simulated time
            self.message_ldp.complete_graceful_restart(name)
            record.detail += "; resumed, sessions re-forming"
        restart.resumed_at = self.scheduler.now
        self._recovered(record)

    def _hold_expired(self, restart: RestartRecord) -> None:
        """The forwarding-state holding timer: entries stale-marked at
        the restart and never refreshed since are flushed now, at
        exactly ``began_at + hold_time``."""
        nodes = {restart.node}
        if self.message_ldp is not None:
            # helper peers stale-marked their entries routed via the
            # restarting node; their hold timer is the same one
            nodes.update(self.network.topology.neighbors(restart.node))
        ilm_flushed = ftn_flushed = 0
        tel = get_telemetry()
        for name in sorted(nodes):
            node = self.network.nodes[name]
            labels = node.ilm.flush_stale()
            fecs = node.ftn.flush_stale()
            ilm_flushed += len(labels)
            ftn_flushed += len(fecs)
            if (labels or fecs) and tel.enabled:
                event = StaleEntriesFlushed(
                    node=name,
                    ilm_flushed=len(labels),
                    ftn_flushed=len(fecs),
                )
                event.time = self.scheduler.now
                tel.events.emit(event)
            if tel.enabled:
                tel.stale_entries.labels(name, "ilm").set(0)
                tel.stale_entries.labels(name, "ftn").set(0)
        restart.hold_expired_at = self.scheduler.now
        restart.ilm_flushed = ilm_flushed
        restart.ftn_flushed = ftn_flushed

    # -- LDP session drop ---------------------------------------------------
    def _inject_session_drop(self, record: FaultRecord) -> None:
        a, b = record.spec.target
        self.message_ldp.drop_session(a, b)
        record.detail = "session reset; backoff reconnect armed"

    def _heal_noop(self, record: FaultRecord) -> None:
        # recovery is autonomous (the process's own backoff machinery);
        # finalize() back-fills recovered_at from sessions_recovered
        pass

    # -- information-base bit flips ----------------------------------------
    def _inject_bitflip(self, record: FaultRecord) -> None:
        name = record.spec.target[0]
        node = self.network.nodes[name]
        params = record.spec.params
        level = params.get("level")
        address = params.get("address")
        level, address = self._pick_slot(node, level, address)
        if level is None:
            record.skipped = True
            record.detail = "information base empty; nothing to corrupt"
            return
        label_xor = int(params.get("label_xor", 0))
        index_xor = int(params.get("index_xor", 0))
        op_xor = int(params.get("op_xor", 0))
        if not (label_xor or index_xor or op_xor):
            label_xor = 1 << self.rng.randrange(20)
        node.modifier.corrupt_pair(
            level, address,
            index_xor=index_xor, label_xor=label_xor, op_xor=op_xor,
        )
        record.detail = (
            f"level {level} addr {address} "
            f"xor index={index_xor:#x} label={label_xor:#x} op={op_xor:#x}"
        )

    def _pick_slot(self, node, level, address):
        """Choose a populated (level, address) slot deterministically."""
        # mirror before choosing, so the info base reflects the tables
        node._sync_info_base()
        counts = node.modifier.ib_counts()
        if level is None:
            populated = [lvl for lvl in (1, 2, 3) if counts[lvl - 1] > 0]
            if not populated:
                return None, None
            level = self.rng.choice(populated)
        if counts[level - 1] == 0:
            return None, None
        if address is None:
            address = self.rng.randrange(counts[level - 1])
        return int(level), int(address)

    def _heal_bitflip(self, record: FaultRecord) -> None:
        name = record.spec.target[0]
        node = self.network.nodes[name]
        reports = node.scrub_info_base()
        self.scrub_reports.extend(reports)
        repaired = sum(r.repaired for r in reports)
        record.detail += f"; scrub repaired {repaired}"
        self._recovered(record)

    # -- signaling storms ---------------------------------------------------
    def _storm_window(self, record: FaultRecord) -> float:
        spec = record.spec
        if spec.heal_at is not None:
            return spec.heal_at - spec.at
        return float(spec.params.get("window", 0.5))

    def _storm_lsp_prefix(self, spec: FaultSpec) -> str:
        return f"__storm-{spec.label}-{spec.at:g}"

    def _inject_signaling_storm(self, record: FaultRecord) -> None:
        """Flood the target's control plane with seeded bursts.

        With message-level LDP: forged LABEL_MAPPINGs (unknown FECs --
        harmless if processed, but each one occupies queue space and a
        service slot) plus a HELLO flood, at seeded times across the
        storm window.  With FRR/RSVP-TE: a seeded burst of LSP setup
        attempts at seeded priorities, exercising admission control and
        preemption.
        """
        spec = record.spec
        target = spec.target[0]
        window = self._storm_window(record)
        start = self.scheduler.now
        if self.message_ldp is not None:
            from repro.control.ldp_sessions import LDPMessage, MsgType

            neighbors = sorted(self.network.topology.neighbors(target))
            if not neighbors:
                record.skipped = True
                record.detail = "target has no neighbors; nothing to flood"
                return
            mappings = int(spec.params.get("mappings", 2000))
            hellos = int(spec.params.get("hellos", 100))
            for i in range(mappings):
                msg = LDPMessage(
                    MsgType.LABEL_MAPPING,
                    self.rng.choice(neighbors),
                    target,
                    fec_id=f"__storm-{target}-{i}",
                    label=900_000 + i,
                )
                when = start + self.rng.uniform(0.0, window)
                self.scheduler.at(
                    when, lambda m=msg: self.message_ldp.send(m)
                )
            for i in range(hellos):
                msg = LDPMessage(
                    MsgType.HELLO, self.rng.choice(neighbors), target
                )
                when = start + self.rng.uniform(0.0, window)
                self.scheduler.at(
                    when, lambda m=msg: self.message_ldp.send(m)
                )
            record.detail = (
                f"{mappings} mappings + {hellos} hellos over {window:g}s"
            )
            return
        # FRR control plane: a burst of competing LSP setups
        from repro.control.cspf import CSPFError, cspf_path
        from repro.control.rsvp_te import SignalingError

        signaler = self.frr.signaler
        names = sorted(self.network.nodes)
        others = [n for n in names if n != target]
        setups = int(spec.params.get("setups", 20))
        bandwidth = float(spec.params.get("bandwidth_bps", 1e6))
        prefix = self._storm_lsp_prefix(spec)
        attempted = succeeded = 0
        for i in range(setups):
            egress = self.rng.choice(others)
            priority = self.rng.randrange(8)
            attempted += 1
            try:
                route = cspf_path(
                    self.network.topology, target, egress, bandwidth_bps=0.0
                )
                signaler.setup(
                    f"{prefix}-{i}",
                    target,
                    egress,
                    explicit_route=route,
                    bandwidth_bps=bandwidth,
                    setup_priority=priority,
                )
                succeeded += 1
            except (SignalingError, CSPFError):
                continue
        record.detail = (
            f"{attempted} setup attempts, {succeeded} admitted "
            f"@ {bandwidth:g} bps"
        )

    def _heal_signaling_storm(self, record: FaultRecord) -> None:
        spec = record.spec
        target = spec.target[0]
        if self.message_ldp is not None:
            speaker = self.message_ldp.speakers[target]
            neighbors = sorted(self.network.topology.neighbors(target))
            up = all(n in speaker.sessions for n in neighbors)
            if up:
                # the flood never took a session down: recovered as of
                # the moment it stopped
                self._recovered(record)
            # else finalize() back-fills from sessions_recovered
            return
        from repro.control.rsvp_te import SignalingError

        signaler = self.frr.signaler
        prefix = self._storm_lsp_prefix(spec)
        torn = 0
        for name in sorted(signaler.lsps):
            if name.startswith(prefix):
                try:
                    signaler.teardown(name)
                    torn += 1
                except (KeyError, SignalingError):
                    continue
        record.detail += f"; {torn} storm LSPs torn down"
        self._recovered(record)

    # -- adversarial faults --------------------------------------------------
    def _inject_label_spoof(self, record: FaultRecord) -> None:
        """Forge labelled packets over the target LER's trust boundary.

        Each forged packet carries a *valid* local label of the target
        (cycled over its announced FECs) so an unguarded edge switches
        it straight down the FEC's LSP; an armed edge guard rejects
        every one (a labelled packet from outside the domain is never
        self-originated).
        """
        spec = record.spec
        target = spec.target[0]
        monitor = self.security
        window = self._storm_window(record)
        start = self.scheduler.now
        packets = int(spec.params.get("packets", 40))
        ttl = int(spec.params.get("ttl", 64))
        src = str(spec.params.get("src", "203.0.113.66"))
        speaker = self.message_ldp.speakers[target]
        fecs = [
            f for f in sorted(speaker.local_labels)
            if not f.startswith("__")
        ]
        if not fecs:
            record.skipped = True
            record.detail = "target announces no FECs; nothing to spoof"
            return
        attack = monitor.begin_attack(spec.kind.value, spec.label, start)
        for i in range(packets):
            fec = fecs[i % len(fecs)]
            label = speaker.local_labels[fec]
            flow_id = monitor.allocate_forged_flow_id(attack, fec)
            # aim the inner header at the FEC's real destination so an
            # accepted forgery travels the whole LSP and counts as a
            # leak on delivery
            dst = monitor.flow_dsts.get(fec, src)
            when = start + self.rng.uniform(0.0, window)
            inner = IPv4Packet(
                src=src, dst=dst, ttl=ttl,
                flow_id=flow_id, seq=i, created_at=when,
            )
            pkt = MPLSPacket(
                LabelStack([LabelEntry(label=label, ttl=ttl)]), inner
            )
            self.scheduler.at(
                when,
                lambda p=pkt: self.network.inject_external(target, p),
            )
        record.detail = (
            f"{packets} forged stacks across {len(fecs)} FEC(s) "
            f"over {window:g}s"
        )

    def _inject_ldp_hijack(self, record: FaultRecord) -> None:
        """Forge an LDP shutdown against the target session.

        The forged message carries a deliberately *wrong* (but present)
        auth token -- ``send()`` only stamps the genuine session token
        onto messages with no token at all, so the forgery reaches
        ``_handle_shutdown`` as an attacker would deliver it.  With
        authentication on it is rejected and counted; with it off the
        session tears down and its FECs are the blast.
        """
        from repro.control.ldp_sessions import (
            LDPMessage,
            MsgType,
            session_token,
        )

        spec = record.spec
        a, b = spec.target
        now = self.scheduler.now
        self.security.begin_attack(spec.kind.value, spec.label, now)
        forged = session_token(a, b) ^ (1 + self.rng.randrange(0xFFFF))
        msg = LDPMessage(MsgType.SHUTDOWN, a, b, auth=forged)
        self.message_ldp.send(msg)
        record.detail = f"forged shutdown {a}->{b} with bad auth token"

    def _inject_xconnect_leak(self, record: FaultRecord) -> None:
        """Corrupt one ILM entry so a victim FEC's traffic is switched
        into another FEC's LSP (a VPN cross-connect).

        SEU-style direct table write: the victim's out-label is replaced
        with the next hop's binding for the imposter FEC, so leaked
        packets really do arrive at the wrong egress.  The install bumps
        the table generation, so armed flow caches drop the stale
        decision and the leak is identical under --batching on|off.
        """
        spec = record.spec
        target = spec.target[0]
        monitor = self.security
        now = self.scheduler.now
        speaker = self.message_ldp.speakers[target]
        node = self.network.nodes[target]
        candidates = []
        for fec_id in sorted(speaker.local_labels):
            if fec_id.startswith("__"):
                continue
            label = speaker.local_labels[fec_id]
            nhlfe = node.ilm.get(label)
            if (
                nhlfe is None
                or nhlfe.next_hop is None
                or nhlfe.out_label is None
            ):
                continue  # unprogrammed, egress, or PHP entry
            candidates.append((fec_id, label, nhlfe))
        victim = spec.params.get("victim")
        if victim is not None:
            candidates = [c for c in candidates if c[0] == victim]
        if not candidates:
            record.skipped = True
            record.detail = (
                "no transit ILM entry to cross-connect"
                + (f" for victim {victim!r}" if victim else "")
            )
            return
        victim, label, nhlfe = candidates[0]
        peer = self.message_ldp.speakers[nhlfe.next_hop]
        imposter = spec.params.get("imposter")
        imposters = [
            f for f in sorted(peer.local_labels)
            if f != victim
            and not f.startswith("__")
            and peer.local_labels[f] != nhlfe.out_label
        ]
        if imposter is not None:
            imposters = [f for f in imposters if f == imposter]
        if not imposters:
            record.skipped = True
            record.detail = (
                f"no imposter FEC at {nhlfe.next_hop} to leak "
                f"{victim} into"
            )
            return
        imposter = imposters[0]
        leak_label = peer.local_labels[imposter]
        node.ilm.install(
            label, dataclasses.replace(nhlfe, out_label=leak_label)
        )
        monitor.begin_attack(spec.kind.value, spec.label, now)
        monitor.note_xconnect_injected(now, target, victim, imposter)
        record.detail = (
            f"{victim} ILM entry at {target} now switches into "
            f"{imposter}'s LSP"
        )

    def _inject_ttl_flood(self, record: FaultRecord) -> None:
        """Storm the target edge with TTL=1 packets aimed at routed
        prefixes: every one expires at the ingress and punts exception
        work toward the bounded control queues, where (unmitigated) it
        competes with keepalives."""
        spec = record.spec
        target = spec.target[0]
        monitor = self.security
        window = self._storm_window(record)
        start = self.scheduler.now
        packets = int(spec.params.get("packets", 400))
        src = str(spec.params.get("src", "203.0.113.66"))
        # dst must be a routed prefix: the ingress FTN lookup precedes
        # its TTL check, so an unroutable flood never reaches the
        # exception path.  Skip prefixes homed at the target itself --
        # those deliver locally without ever expiring.
        local = {
            prefix
            for prefix, egress, _ in monitor.flows
            if egress == target
        }
        pairs = sorted(
            (prefix, str(dst))
            for prefix, dst in monitor.flow_dsts.items()
            if prefix not in local
        )
        if not pairs:
            record.skipped = True
            record.detail = "no routed prefixes to aim the flood at"
            return
        attack = monitor.begin_attack(spec.kind.value, spec.label, start)
        for i in range(packets):
            prefix, dst = pairs[i % len(pairs)]
            flow_id = monitor.allocate_forged_flow_id(attack, prefix)
            when = start + self.rng.uniform(0.0, window)
            pkt = IPv4Packet(
                src=src, dst=dst, ttl=1,
                flow_id=flow_id, seq=i, created_at=when,
            )
            self.scheduler.at(
                when,
                lambda p=pkt: self.network.inject_external(target, p),
            )
        record.detail = f"{packets} TTL=1 packets over {window:g}s"

    def _heal_ttl_flood(self, record: FaultRecord) -> None:
        target = record.spec.target[0]
        speaker = self.message_ldp.speakers[target]
        neighbors = sorted(self.network.topology.neighbors(target))
        if all(n in speaker.sessions for n in neighbors):
            # the flood never starved a session to death: recovered as
            # of the moment it stopped
            self._recovered(record)
        # else finalize() back-fills from sessions_recovered

    # -- controller faults ---------------------------------------------------
    def _inject_controller_crash(self, record: FaultRecord) -> None:
        if not self.controller.alive:
            record.skipped = True
            record.detail = "controller already down"
            return
        self.controller.crash()
        record.detail = (
            "controller down; adopted nodes will hold-timer out"
            if self.controller.config.enabled
            else "controller disabled; crash is bookkeeping only"
        )

    def _heal_controller_crash(self, record: FaultRecord) -> None:
        self.controller.restart()
        record.detail += "; warm restart, resync armed"
        if not self.controller.config.enabled:
            # a dark controller has nothing to resync: the heal is the
            # whole recovery
            self._recovered(record)
        # else finalize() back-fills recovered_at from the readopts

    def _inject_controller_partition(self, record: FaultRecord) -> None:
        name = record.spec.target[0]
        if self.controller.channels[name].partitioned:
            record.skipped = True
            record.detail = "channel already partitioned"
            return
        self.controller.cut(name)
        record.detail = f"controller channel to {name} cut"

    def _heal_controller_partition(self, record: FaultRecord) -> None:
        name = record.spec.target[0]
        self.controller.restore(name)
        record.detail += "; channel restored, readopt pending"
        if not self.controller.config.enabled:
            self._recovered(record)
        # else finalize() back-fills recovered_at from the readopts

    # -- timelines ----------------------------------------------------------
    def _mark_link(self, a: str, b: str, up: bool) -> None:
        key = (a, b) if a <= b else (b, a)
        self._link_log.setdefault(key, []).append((self.scheduler.now, up))

    def _mark_node(self, name: str, up: bool) -> None:
        self._node_log.setdefault(name, []).append((self.scheduler.now, up))

    def link_was_up(self, a: str, b: str, t: float) -> bool:
        """Was the adjacency up at simulated time ``t``?  (Links start
        up; the log records every injected transition.)"""
        key = (a, b) if a <= b else (b, a)
        state = True
        for ts, up in self._link_log.get(key, []):
            if ts > t:
                break
            state = up
        return state and self.node_was_up(a, t) and self.node_was_up(b, t)

    def node_was_up(self, name: str, t: float) -> bool:
        state = True
        for ts, up in self._node_log.get(name, []):
            if ts > t:
                break
            state = up
        return state

    # -- wrap-up ------------------------------------------------------------
    def finalize(self) -> None:
        """Back-fill recovery times that are observed, not scheduled:
        an LDP session drop recovers whenever the process's backoff
        machinery re-establishes the session, and a controller fault
        recovers whenever the PCE's reconnect loop re-adopts."""
        if self.controller is not None:
            readopts = list(self.controller.readopts)
            all_nodes = sorted(self.controller.channels)
            for record in self.records:
                if record.recovered_at is not None or record.skipped:
                    continue
                if record.spec.kind is FaultKind.CONTROLLER_CRASH:
                    # recovered once every node has been re-adopted
                    # after the restart: the time of the last readopt
                    restart_at = record.healed_at
                    if restart_at is None:
                        continue
                    times: Dict[str, float] = {}
                    for entry in readopts:
                        if entry["at"] >= restart_at:
                            times.setdefault(entry["node"], entry["at"])
                    if all(n in times for n in all_nodes):
                        record.recovered_at = max(times.values())
                elif record.spec.kind is FaultKind.CONTROLLER_PARTITION:
                    healed_at = record.healed_at
                    if healed_at is None:
                        continue
                    target = record.spec.target[0]
                    for entry in readopts:
                        if (
                            entry["node"] == target
                            and entry["at"] >= healed_at
                        ):
                            record.recovered_at = entry["at"]
                            break
        if self.message_ldp is None:
            return
        recovered = list(self.message_ldp.sessions_recovered)
        for record in self.records:
            if record.recovered_at is not None or record.skipped:
                continue
            if record.spec.kind in (
                FaultKind.LDP_SESSION_DROP,
                FaultKind.LDP_HIJACK,
            ):
                # an accepted hijack recovers exactly like a session
                # drop: whenever the backoff machinery re-establishes
                # the torn-down session.  A rejected one never tore
                # anything down: recovered the moment it was rejected.
                if (
                    record.spec.kind is FaultKind.LDP_HIJACK
                    and self.security is not None
                ):
                    attack = self.security.attack(
                        record.spec.kind.value, record.spec.label
                    )
                    if attack is not None and attack.packets_rejected:
                        record.recovered_at = attack.detected_at
                        continue
                want = tuple(sorted(record.spec.target))
                for when, a, b, _downtime in recovered:
                    if (
                        tuple(sorted((a, b))) == want
                        and when >= record.injected_at
                    ):
                        record.recovered_at = when
                        break
            elif record.spec.kind is FaultKind.XCONNECT_LEAK:
                # quarantine *is* the recovery: the poisoned entry is
                # out of the table from that audit pass on
                if self.security is not None:
                    attack = self.security.attack(
                        record.spec.kind.value, record.spec.label
                    )
                    if attack is not None:
                        record.recovered_at = attack.mitigated_at
            elif record.spec.kind in (
                FaultKind.SIGNALING_STORM,
                FaultKind.TTL_FLOOD,
            ):
                # the storm recovers when every session the flood took
                # down has come back up
                target = record.spec.target[0]
                speaker = self.message_ldp.speakers[target]
                neighbors = sorted(
                    self.network.topology.neighbors(target)
                )
                if not all(n in speaker.sessions for n in neighbors):
                    continue
                times = [
                    when
                    for when, a, b, _downtime in recovered
                    if target in (a, b) and when >= record.injected_at
                ]
                if times:
                    record.recovered_at = max(times)

    @property
    def mttr_values(self) -> List[float]:
        """Every completed inject->recover interval, in seconds."""
        return [r.mttr for r in self.records if r.mttr is not None]
