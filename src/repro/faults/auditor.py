"""The data-plane consistency auditor and transaction watchdog.

A control plane that programs hardware through a driver can drift from
it: SEUs corrupt pairs in place, a crashed process can leave a
transaction open, a missed sync can leave the mirror stale.  The
:class:`ConsistencyAuditor` runs a periodic audit pass over every
hardware node in the network, cross-checking the control-plane tables
(the node's ILM mirror plus its learned flow cache) against what the
information base actually holds, and repairs any disagreement through
the scrub path -- the same VERIFY_INFO-style walk the bit-flip heal
uses, so repairs carry real control-plane cycle cost.

The watchdog rides along: a shadow-bank transaction is supposed to be
begun and committed within one control-plane action, so a node whose
ILM or FTN is *still* mid-transaction on two consecutive audit passes
indicates a wedged (crashed-while-staging) writer and raises an alarm.

Everything is deterministic: nodes are visited in sorted order and the
audit period is fixed, so chaos reports that include an ``audit``
section stay byte-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.events import AuditCompleted
from repro.obs.telemetry import get_telemetry

#: consecutive audit passes a transaction may stay open before the
#: watchdog calls it wedged
WATCHDOG_THRESHOLD = 2


@dataclass
class AuditRecord:
    """The outcome of one audit pass over the whole network."""

    time: float
    nodes_checked: int = 0
    #: nodes whose info base disagreed with the control plane
    drift_nodes: List[str] = field(default_factory=list)
    #: pairs repaired by the scrub path this pass
    repaired: int = 0
    #: control-plane cycles the repairs cost
    cycles: int = 0
    #: nodes flagged for a transaction open across consecutive passes
    watchdog_alarms: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.drift_nodes and not self.watchdog_alarms


class ConsistencyAuditor:
    """Periodically audits hardware info bases against the tables.

    Parameters
    ----------
    network:
        The :class:`~repro.net.network.MPLSNetwork` whose scheduler
        paces the audits and whose nodes are checked.
    period:
        Seconds between audit passes.
    start:
        When the first pass runs (defaults to one period in).
    stop:
        No pass is scheduled at or beyond this horizon (defaults to
        unbounded -- callers running ``scheduler.run(until=...)`` can
        leave it unset).
    repair:
        When True (the default) drift is repaired through the node's
        scrub path; when False the auditor only detects and reports.
    security:
        The run's :class:`repro.security.SecurityMonitor`, or None.
        With one attached, every pass additionally runs the monitor's
        cross-FEC reachability check (VPN cross-connect detection and
        quarantine); the legacy audit records are untouched, so
        pre-security reports stay byte-identical.
    """

    def __init__(
        self,
        network,
        period: float = 0.1,
        start: Optional[float] = None,
        stop: Optional[float] = None,
        repair: bool = True,
        security=None,
    ) -> None:
        if period <= 0:
            raise ValueError("audit period must be positive")
        self.network = network
        self.period = period
        self.stop = stop
        self.repair = repair
        self.security = security
        self.records: List[AuditRecord] = []
        #: node -> consecutive passes observed mid-transaction
        self._open_streak: Dict[str, int] = {}
        self._armed_at = start if start is not None else period
        network.scheduler.at(self._armed_at, self._run_pass)

    # -- one pass ------------------------------------------------------------
    def _run_pass(self) -> None:
        now = self.network.scheduler.now
        if self.security is not None:
            # the adversarial cross-FEC check rides the audit cadence;
            # its findings live on the security monitor, not in the
            # audit records (which keep their legacy byte-exact shape)
            self.security.run_cross_fec_audit(now)
        record = AuditRecord(time=now)
        for name in sorted(self.network.nodes):
            node = self.network.nodes[name]
            self._watch_transactions(name, node, record)
            if not hasattr(node, "modifier"):
                continue  # software data plane: nothing mirrored
            if name in self.network._down_nodes:
                continue  # crashed: its tables are authoritatively gone
            record.nodes_checked += 1
            if self._audit_node(name, node, record):
                record.drift_nodes.append(name)
        self.records.append(record)
        tel = get_telemetry()
        if tel.enabled:
            tel.audit_runs.inc()
            for name in record.drift_nodes:
                tel.audit_drift.labels(name).inc()
            for name in record.watchdog_alarms:
                tel.audit_watchdog.labels(name).inc()
            event = AuditCompleted(
                nodes_checked=record.nodes_checked,
                drift_nodes=tuple(record.drift_nodes),
                repaired=record.repaired,
                watchdog_alarms=tuple(record.watchdog_alarms),
            )
            event.time = now
            tel.events.emit(event)
        next_at = now + self.period
        if self.stop is None or next_at < self.stop:
            self.network.scheduler.at(next_at, self._run_pass)

    def _audit_node(self, name: str, node, record: AuditRecord) -> bool:
        """Cross-check one hardware node; returns True on drift."""
        if node.ilm.generation != node._mirrored_ilm_generation:
            # the mirror is lazily stale, not corrupted: the node
            # re-banks it on its next programmed sync.  Auditing the
            # hardware against tables it was never told about would
            # report false drift.
            return False
        drifted = False
        for level in (1, 2, 3):
            expected = sorted(node._expected_pairs(level))
            stored = sorted(node.modifier.ib_pairs(level))
            if stored != expected:
                drifted = True
                break
        if drifted and self.repair:
            reports = node.scrub_info_base()
            record.repaired += sum(r.repaired for r in reports)
            record.cycles += sum(r.cycles for r in reports)
        return drifted

    def _watch_transactions(self, name: str, node, record: AuditRecord) -> None:
        if node.ilm.in_transaction or node.ftn.in_transaction:
            streak = self._open_streak.get(name, 0) + 1
            self._open_streak[name] = streak
            if streak >= WATCHDOG_THRESHOLD:
                record.watchdog_alarms.append(name)
        else:
            self._open_streak.pop(name, None)

    # -- roll-up -------------------------------------------------------------
    def summary(self) -> Tuple[int, int, int, int, int]:
        """(passes, nodes-checked, drift-detections, pairs-repaired,
        watchdog-alarms) across every pass so far."""
        return (
            len(self.records),
            sum(r.nodes_checked for r in self.records),
            sum(len(r.drift_nodes) for r in self.records),
            sum(r.repaired for r in self.records),
            sum(len(r.watchdog_alarms) for r in self.records),
        )

    @property
    def clean(self) -> bool:
        return all(r.clean for r in self.records)

    @property
    def repair_cycles(self) -> int:
        return sum(r.cycles for r in self.records)
