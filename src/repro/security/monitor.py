"""Adversarial-attack detection and mitigation (the security monitor).

The fault injector can forge traffic and control messages that a random
chaos schedule never produces: spoofed label stacks pushed over the
trust boundary, forged LDP shutdowns, a cross-connected ILM entry
leaking one FEC's traffic into another's LSP, and low-TTL packet storms
aimed at the control plane's exception path.  This module is the layer
those attacks are measured *against*:

* :class:`SecurityConfig` -- the scenario's ``security`` key: one
  master ``enabled`` switch plus per-guard toggles, so a scenario can
  run the same seeded attack with and without its mitigation and
  compare blast radii.
* :class:`SecurityMonitor` -- the runtime: owns the edge label-stack
  guard (RFC 4364 trust-boundary semantics: a labelled packet arriving
  from outside the MPLS domain is never trusted), verifies per-session
  LDP auth tokens, cross-checks ILM entries against neighbour label
  announcements for cross-FEC leaks (quarantining hits through the
  transactional table API), and rate-limits TTL-exception punts before
  they reach the bounded control queues.
* :class:`AttackRecord` -- per-attack accounting: time-to-detect,
  time-to-mitigate, blast radius in FECs, and packets
  accepted/rejected/leaked -- the numbers the chaos report's gated
  ``security`` section carries.

Import discipline: this package is imported *by* the control plane and
the fault layer, never the other way around -- attack kinds are plain
strings here and the LDP process is duck-typed, which keeps
``repro.security`` free of cycles with ``repro.control`` and
``repro.faults``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.net.packet import MPLSPacket
from repro.obs.events import AttackDetected, AttackMitigated
from repro.obs.telemetry import get_telemetry

#: Attack kinds, mirroring the ``FaultKind`` values in
#: :mod:`repro.faults.scenario` (kept as strings to avoid the import).
LABEL_SPOOF = "label-spoof"
LDP_HIJACK = "ldp-hijack"
XCONNECT_LEAK = "xconnect-leak"
TTL_FLOOD = "ttl-flood"

#: Forged packets get flow ids from a range real sources never reach,
#: so delivered-forged counts can't collide with legitimate flows.
FORGED_FLOW_BASE = 0x5EC00000


@dataclass(frozen=True)
class SecurityConfig:
    """The scenario's ``security`` key.

    ``enabled`` is the master mitigation switch (``repro chaos
    --mitigation on|off`` overrides it): with it off the attacks still
    run and are still accounted, but every guard stands down -- the
    blast-radius baseline the mitigated run is compared against.
    """

    enabled: bool = True
    #: Reject labelled packets arriving over the trust boundary at LERs.
    edge_guard: bool = True
    #: Verify per-session auth tokens on LDP shutdown messages.
    authenticate: bool = True
    #: Cross-check ILM entries against neighbour announcements (the
    #: auditor's cross-FEC reachability pass).
    cross_check: bool = True
    #: Quarantine cross-connected ILM entries via a table transaction.
    quarantine: bool = True
    #: TTL-exception punts admitted to the control plane per second.
    exception_rate: float = 200.0
    #: Exception-path token-bucket burst.
    exception_burst: float = 20.0

    _KEYS = frozenset(
        {
            "enabled",
            "edge_guard",
            "authenticate",
            "cross_check",
            "quarantine",
            "exception_rate",
            "exception_burst",
        }
    )

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "SecurityConfig":
        unknown = sorted(set(raw) - cls._KEYS)
        if unknown:
            raise ValueError(
                f"unknown security key(s): {', '.join(unknown)} "
                f"(accepted: {', '.join(sorted(cls._KEYS))})"
            )
        return cls(
            enabled=bool(raw.get("enabled", True)),
            edge_guard=bool(raw.get("edge_guard", True)),
            authenticate=bool(raw.get("authenticate", True)),
            cross_check=bool(raw.get("cross_check", True)),
            quarantine=bool(raw.get("quarantine", True)),
            exception_rate=float(raw.get("exception_rate", 200.0)),
            exception_burst=float(raw.get("exception_burst", 20.0)),
        )


@dataclass
class AttackRecord:
    """Accounting for one injected attack fault."""

    kind: str
    target: str
    injected_at: float
    detected_at: Optional[float] = None
    mitigated_at: Optional[float] = None
    #: FECs currently inside the blast: torn down, leaked into, or
    #: carrying accepted forged traffic.  Quarantine *moves* a FEC from
    #: here to ``quarantined_fecs``, so ``blast_radius`` uniformly
    #: means "FECs still damaged at the end of the run".
    blast_fecs: Set[str] = field(default_factory=set)
    quarantined_fecs: Set[str] = field(default_factory=set)
    #: Forged packets/messages the system accepted (guard down or off).
    packets_accepted: int = 0
    #: Forged packets/messages a guard rejected.
    packets_rejected: int = 0
    #: Forged or misdirected packets that reached a host they never
    #: should have (filled in by :meth:`SecurityMonitor.finalize`).
    packets_leaked: int = 0
    detail: str = ""

    @property
    def blast_radius(self) -> int:
        return len(self.blast_fecs)

    @property
    def time_to_detect(self) -> Optional[float]:
        if self.detected_at is None:
            return None
        return self.detected_at - self.injected_at

    @property
    def time_to_mitigate(self) -> Optional[float]:
        if self.mitigated_at is None:
            return None
        return self.mitigated_at - self.injected_at


class ExceptionRateLimiter:
    """Deterministic per-node token bucket for TTL-exception punts.

    Integer admission over float tokens: ``admit`` never admits a
    fraction of a packet, and refill is computed from elapsed simulated
    time, so the same seed always admits the same packets.
    """

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self._state: Dict[str, Tuple[float, float]] = {}

    def admit(self, node: str, now: float, count: int) -> int:
        """Admit up to ``count`` exceptions at ``now``; returns how
        many passed (the rest are the caller's to drop)."""
        tokens, last = self._state.get(node, (self.burst, now))
        tokens = min(self.burst, tokens + max(0.0, now - last) * self.rate)
        admitted = min(count, int(tokens))
        self._state[node] = (tokens - admitted, now)
        return admitted


class SecurityMonitor:
    """The runtime attack ledger and mitigation hooks.

    One monitor serves one chaos run.  It is wired in by
    :func:`repro.faults.chaos.build_run`: the network holds it as
    ``security_monitor`` (TTL-exception punts), edge nodes hold its
    :meth:`guard_external` as their ``external_guard``, the message-LDP
    process holds it as ``security`` (auth tokens), the auditor calls
    :meth:`run_cross_fec_audit` each pass, and the injector calls
    :meth:`begin_attack` / the ``note_*`` hooks as forged inputs land.
    """

    def __init__(
        self,
        network: Any,
        config: SecurityConfig,
        message_ldp: Any = None,
    ) -> None:
        self.network = network
        self.config = config
        self.message_ldp = message_ldp
        self.attacks: List[AttackRecord] = []
        self._active: Dict[Tuple[str, str], AttackRecord] = {}
        #: forged flow id -> (record, fec prefix) for guard attribution
        self._forged: Dict[int, Tuple[AttackRecord, str]] = {}
        self._next_forged = FORGED_FLOW_BASE
        #: (prefix, egress, flow_id) for every legitimate traffic flow,
        #: so finalize can tell a leak from a delivery
        self.flows: List[Tuple[str, str, int]] = []
        #: prefix -> destination address, for forging plausible inners
        self.flow_dsts: Dict[str, Any] = {}
        self.limiter = ExceptionRateLimiter(
            config.exception_rate, config.exception_burst
        )
        # totals for the report section
        self.guard_rejections = 0
        self.auth_mismatches = 0
        self.exceptions_total = 0
        self.exceptions_forwarded = 0
        self.exceptions_limited = 0
        #: (time, node, label, fec, leaked_to) per quarantined entry
        self.quarantines: List[Tuple[float, str, int, str, str]] = []

    # -- wiring -------------------------------------------------------------
    def arm(self) -> None:
        """Attach to the network, the edge nodes and the LDP process."""
        self.network.security_monitor = self
        if self.message_ldp is not None:
            self.message_ldp.security = self
        if self.config.enabled and self.config.edge_guard:
            for name in sorted(self.network.nodes):
                node = self.network.nodes[name]
                if getattr(node, "is_edge", False):
                    node.external_guard = self.guard_external

    def _now(self) -> float:
        return self.network.scheduler.now

    # -- attack ledger ------------------------------------------------------
    def begin_attack(self, kind: str, target: str, at: float) -> AttackRecord:
        record = AttackRecord(kind=kind, target=target, injected_at=at)
        self.attacks.append(record)
        self._active[(kind, target)] = record
        return record

    def attack(self, kind: str, target: str) -> Optional[AttackRecord]:
        return self._active.get((kind, target))

    def _attack_on_node(self, kind: str, node: str) -> Optional[AttackRecord]:
        """The active ``kind`` attack whose target names ``node`` (link
        targets are 'a-b' labels, so substring-match the parts)."""
        for (k, target), record in self._active.items():
            if k == kind and node in target.split("-"):
                return record
        return None

    def _detect(
        self, record: AttackRecord, now: float, node: str, detail: str
    ) -> None:
        """First detection of this attack: stamp and announce once."""
        if record.detected_at is not None:
            return
        record.detected_at = now
        tel = get_telemetry()
        if tel.enabled:
            tel.attacks_detected.labels(record.kind, record.target).inc()
            tel.events.emit(
                AttackDetected(
                    attack=record.kind, node=node, detail=detail
                )
            )

    def _mitigate(
        self,
        record: AttackRecord,
        now: float,
        node: str,
        action: str,
        detail: str,
    ) -> None:
        """First mitigation of this attack: stamp and announce once."""
        if record.mitigated_at is not None:
            return
        record.mitigated_at = now
        tel = get_telemetry()
        if tel.enabled:
            tel.attacks_mitigated.labels(record.kind, action).inc()
            tel.events.emit(
                AttackMitigated(
                    attack=record.kind,
                    node=node,
                    action=action,
                    detail=detail,
                )
            )

    # -- label spoofing ------------------------------------------------------
    def allocate_forged_flow_id(
        self, record: AttackRecord, fec: str
    ) -> int:
        flow_id = self._next_forged
        self._next_forged += 1
        self._forged[flow_id] = (record, fec)
        return flow_id

    def guard_external(self, node: str, packet: Any) -> bool:
        """The LER trust-boundary guard: True rejects the packet.

        Labelled packets arriving from outside the domain are never
        self-originated, so an armed guard rejects every one of them
        (unlabelled IP is what a layer-2 network legitimately hands an
        ingress LER).
        """
        if not isinstance(packet, MPLSPacket):
            return False
        now = self._now()
        self.guard_rejections += 1
        forged = self._forged.get(packet.inner.flow_id)
        tel = get_telemetry()
        if tel.enabled:
            tel.spoof_rejections.labels(node).inc()
        if forged is not None:
            record, fec = forged
            record.packets_rejected += 1
            detail = f"forged stack for {fec} rejected at {node}"
            self._detect(record, now, node, detail)
            self._mitigate(record, now, node, "guard-reject", detail)
        return True

    def note_spoof_accepted(self, flow_id: int) -> None:
        """A forged labelled packet entered the network (guard down)."""
        forged = self._forged.get(flow_id)
        if forged is None:
            return
        record, fec = forged
        record.packets_accepted += 1
        record.blast_fecs.add(fec)

    # -- LDP session hijack --------------------------------------------------
    def note_auth_mismatch(self, now: float, node: str, peer: str) -> None:
        """A shutdown carried a wrong session token and was rejected."""
        self.auth_mismatches += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.auth_mismatches.labels(node, peer).inc()
        record = self._attack_on_node(LDP_HIJACK, node)
        if record is None:
            record = self._attack_on_node(LDP_HIJACK, peer)
        if record is not None:
            record.packets_rejected += 1
            detail = f"bad auth token on shutdown {peer}->{node}"
            self._detect(record, now, node, detail)
            self._mitigate(record, now, node, "auth-reject", detail)

    def note_hijack_teardown(
        self, now: float, node: str, peer: str, affected: List[str]
    ) -> None:
        """A forged shutdown was accepted and tore the session down."""
        record = self._attack_on_node(LDP_HIJACK, node)
        if record is None:
            record = self._attack_on_node(LDP_HIJACK, peer)
        if record is not None:
            record.packets_accepted += 1
            record.blast_fecs.update(affected)

    # -- TTL-expiry flood ----------------------------------------------------
    def ttl_exception(self, node: str, count: int) -> None:
        """``count`` TTL-expired discards at ``node`` punt ICMP-style
        exception work toward the control plane; the rate limiter
        decides how much of it the bounded queues ever see."""
        now = self._now()
        self.exceptions_total += count
        record = self._attack_on_node(TTL_FLOOD, node)
        limiting = self.config.enabled and self.config.exception_rate >= 0
        if limiting:
            admitted = self.limiter.admit(node, now, count)
        else:
            admitted = count
        limited = count - admitted
        self.exceptions_forwarded += admitted
        self.exceptions_limited += limited
        tel = get_telemetry()
        if tel.enabled:
            if admitted:
                tel.exception_path.labels(node, "forwarded").inc(admitted)
            if limited:
                tel.exception_path.labels(node, "limited").inc(limited)
        if limited and record is not None:
            detail = f"{limited} exception punt(s) rate-limited at {node}"
            self._detect(record, now, node, detail)
            self._mitigate(record, now, node, "rate-limit", detail)
        mldp = self.message_ldp
        if admitted and mldp is not None and getattr(mldp, "queues", None):
            mldp.exception_load(node, admitted)

    def note_hold_expiry_teardown(
        self, now: float, a: str, b: str, affected: List[str]
    ) -> None:
        """A hold timer expired while a flood attack was active: the
        starved session's FECs join the flood's blast radius."""
        for name in (a, b):
            record = self._attack_on_node(TTL_FLOOD, name)
            if record is not None:
                record.blast_fecs.update(affected)
                return

    # -- VPN cross-connect leak ----------------------------------------------
    def note_xconnect_injected(
        self, now: float, node: str, victim: str, imposter: str
    ) -> None:
        record = self._attack_on_node(XCONNECT_LEAK, node)
        if record is not None:
            record.packets_accepted += 1
            record.blast_fecs.add(victim)
            record.detail = f"{victim} leaked into {imposter} at {node}"

    def run_cross_fec_audit(self, now: float) -> int:
        """Cross-FEC reachability check, called from each auditor pass:
        every ILM entry's out-label must be what the next hop announced
        for the *same* FEC.  An out-label that matches the neighbour's
        binding for a different FEC is a cross-connect; quarantine it
        through a table transaction (generation bump included, so flow
        caches drop the poisoned decision).  Returns entries
        quarantined this pass.
        """
        if not (self.config.enabled and self.config.cross_check):
            return 0
        mldp = self.message_ldp
        if mldp is None:
            return 0
        quarantined = 0
        for name in sorted(mldp.speakers):
            speaker = mldp.speakers[name]
            node = self.network.nodes[name]
            if node.ilm.in_transaction:
                continue  # mid-reprogram; next pass sees the commit
            for fec_id in sorted(speaker.local_labels):
                if fec_id.startswith("__"):
                    continue  # synthetic storm FECs have no bindings
                label = speaker.local_labels[fec_id]
                nhlfe = node.ilm.get(label)
                if nhlfe is None or nhlfe.next_hop is None:
                    continue  # unprogrammed or egress entry
                peer = mldp.speakers.get(nhlfe.next_hop)
                if peer is None or nhlfe.out_label is None:
                    continue
                if nhlfe.out_label == peer.local_labels.get(fec_id):
                    continue  # consistent binding
                leaked_to = next(
                    (
                        other
                        for other in sorted(peer.local_labels)
                        if other != fec_id
                        and peer.local_labels[other] == nhlfe.out_label
                    ),
                    None,
                )
                if leaked_to is None:
                    continue  # stale, not cross-connected; scrub's job
                record = self._attack_on_node(XCONNECT_LEAK, name)
                detail = f"{fec_id} cross-connected into {leaked_to} at {name}"
                if record is not None:
                    self._detect(record, now, name, detail)
                if not self.config.quarantine:
                    continue
                node.ilm.begin()
                node.ilm.remove(label)
                node.ilm.commit()
                self.quarantines.append(
                    (now, name, label, fec_id, leaked_to)
                )
                quarantined += 1
                tel = get_telemetry()
                if tel.enabled:
                    tel.xconnect_quarantines.labels(name).inc()
                if record is not None:
                    record.blast_fecs.discard(fec_id)
                    record.quarantined_fecs.add(fec_id)
                    self._mitigate(record, now, name, "quarantine", detail)
        return quarantined

    # -- end of run ----------------------------------------------------------
    def finalize(self) -> None:
        """Fill in the delivery-derived numbers once the horizon passed:
        forged packets that reached a host, and victim traffic delivered
        at an egress its FEC never named."""
        network = self.network
        for flow_id, (record, _fec) in self._forged.items():
            record.packets_leaked += network.delivered_count(flow_id)
        xconnect = [
            r for r in self.attacks if r.kind == XCONNECT_LEAK
        ]
        if not xconnect:
            return
        egress_of = {fid: egress for _, egress, fid in self.flows}
        fec_of = {fid: prefix for prefix, _, fid in self.flows}
        leaked_by_fec: Dict[str, int] = {}
        # chaos traffic is scalar in both batching modes (the fast path
        # only arms caches), so the scalar delivery log is the record
        for delivery in network.deliveries:
            fid = delivery.packet.flow_id
            home = egress_of.get(fid)
            if home is not None and delivery.node != home:
                fec = fec_of[fid]
                leaked_by_fec[fec] = leaked_by_fec.get(fec, 0) + 1
        for record in xconnect:
            record.packets_leaked += sum(
                count
                for fec, count in leaked_by_fec.items()
                if fec in record.blast_fecs or fec in record.quarantined_fecs
            )
