"""Adversarial-attack detection and mitigation for the chaos layer.

See :mod:`repro.security.monitor` for the model: seeded MPLS attacks
(label spoofing, LDP session hijack, VPN cross-connect leaks,
TTL-expiry floods) measured against the guards this package provides,
with per-attack time-to-detect and blast-radius accounting surfaced in
the chaos report's gated ``security`` section.
"""

from repro.security.monitor import (
    FORGED_FLOW_BASE,
    LABEL_SPOOF,
    LDP_HIJACK,
    TTL_FLOOD,
    XCONNECT_LEAK,
    AttackRecord,
    ExceptionRateLimiter,
    SecurityConfig,
    SecurityMonitor,
)

__all__ = [
    "FORGED_FLOW_BASE",
    "LABEL_SPOOF",
    "LDP_HIJACK",
    "TTL_FLOOD",
    "XCONNECT_LEAK",
    "AttackRecord",
    "ExceptionRateLimiter",
    "SecurityConfig",
    "SecurityMonitor",
]
