"""The 32-bit MPLS label stack entry (paper Figure 5, RFC 3032).

Layout, most significant bit first::

    +--------------------+-----+---+----------+
    |   label (20 bits)  | CoS | S | TTL (8)  |
    +--------------------+-----+---+----------+
     31               12  11-9  8   7        0

The paper calls the 3-bit experimental field "CoS" (class of service),
following the original RFC 3032 terminology; later RFCs renamed it EXP
and then TC.  We keep the paper's name.

This module also defines :class:`LabelOp`, the 2-bit operation alphabet
stored in the hardware information base's operation memory component
(push / pop / swap / no-operation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import IntEnum

from repro.mpls.errors import InvalidLabelError

#: Largest encodable label value (20 bits).
LABEL_MAX = (1 << 20) - 1

#: Labels 0-15 are reserved by IANA (RFC 3032 section 2.1).
RESERVED_LABEL_MAX = 15

#: "IPv4 Explicit NULL": legal only at the bottom of the stack; the
#: receiving router pops it and forwards based on the IPv4 header.
IPV4_EXPLICIT_NULL = 0

#: "Router Alert": delivered to the local software path on receipt.
ROUTER_ALERT = 1

#: "IPv6 Explicit NULL" (as IPv4 Explicit NULL, for IPv6 payloads).
IPV6_EXPLICIT_NULL = 2

#: "Implicit NULL": never appears on the wire; advertised by an egress
#: LER to request penultimate-hop popping.
IMPLICIT_NULL = 3

#: Alias for the S bit semantics: entries with ``s == BOTTOM_OF_STACK``
#: terminate the stack.
BOTTOM_OF_STACK = 1

#: Field widths, used by both the codec here and the hardware datapath.
LABEL_BITS = 20
COS_BITS = 3
S_BITS = 1
TTL_BITS = 8
ENTRY_BITS = LABEL_BITS + COS_BITS + S_BITS + TTL_BITS  # 32

_COS_MAX = (1 << COS_BITS) - 1
_TTL_MAX = (1 << TTL_BITS) - 1


class LabelOp(IntEnum):
    """The 2-bit operation stored per label pair in the information base.

    The numeric values are part of the hardware contract: the operation
    memory component of the paper's Figure 13 is 2 bits wide.
    """

    NOOP = 0
    PUSH = 1
    SWAP = 2
    POP = 3


@dataclass(frozen=True)
class LabelEntry:
    """One 32-bit label stack entry.

    Instances are immutable; the mutating operations of the data plane
    (TTL decrement, label rewrite) return new entries, which keeps
    packets safe to share between simulated nodes.
    """

    label: int
    cos: int = 0
    s: int = 0
    ttl: int = 64

    def __post_init__(self) -> None:
        if not 0 <= self.label <= LABEL_MAX:
            raise InvalidLabelError(
                f"label {self.label} outside 20-bit range 0..{LABEL_MAX}"
            )
        if not 0 <= self.cos <= _COS_MAX:
            raise InvalidLabelError(f"CoS {self.cos} outside 3-bit range")
        if self.s not in (0, 1):
            raise InvalidLabelError(f"S bit must be 0 or 1, got {self.s}")
        if not 0 <= self.ttl <= _TTL_MAX:
            raise InvalidLabelError(f"TTL {self.ttl} outside 8-bit range")

    # -- wire format ------------------------------------------------------
    def encode(self) -> int:
        """Pack into the 32-bit wire representation."""
        return (
            (self.label << (COS_BITS + S_BITS + TTL_BITS))
            | (self.cos << (S_BITS + TTL_BITS))
            | (self.s << TTL_BITS)
            | self.ttl
        )

    def encode_bytes(self) -> bytes:
        """Big-endian 4-byte wire encoding (network byte order)."""
        return self.encode().to_bytes(4, "big")

    @classmethod
    def decode(cls, word: int) -> "LabelEntry":
        """Unpack a 32-bit word into a label entry."""
        if not 0 <= word < (1 << ENTRY_BITS):
            raise InvalidLabelError(f"{word} is not a 32-bit word")
        return cls(
            label=(word >> (COS_BITS + S_BITS + TTL_BITS)) & LABEL_MAX,
            cos=(word >> (S_BITS + TTL_BITS)) & _COS_MAX,
            s=(word >> TTL_BITS) & 1,
            ttl=word & _TTL_MAX,
        )

    @classmethod
    def decode_bytes(cls, data: bytes) -> "LabelEntry":
        if len(data) != 4:
            raise InvalidLabelError(
                f"a label stack entry is exactly 4 bytes, got {len(data)}"
            )
        return cls.decode(int.from_bytes(data, "big"))

    # -- data plane helpers -----------------------------------------------
    @property
    def is_reserved(self) -> bool:
        return self.label <= RESERVED_LABEL_MAX

    @property
    def is_bottom(self) -> bool:
        return self.s == BOTTOM_OF_STACK

    def decremented(self) -> "LabelEntry":
        """Return a copy with TTL reduced by one (RFC 3443 behaviour).

        Raises :class:`InvalidLabelError` if the TTL is already zero --
        callers must check for expiry (TTL would *become* zero) before
        forwarding, not after.
        """
        if self.ttl == 0:
            raise InvalidLabelError("cannot decrement a zero TTL")
        return replace(self, ttl=self.ttl - 1)

    def with_label(self, label: int) -> "LabelEntry":
        return replace(self, label=label)

    def with_ttl(self, ttl: int) -> "LabelEntry":
        return replace(self, ttl=ttl)

    def with_s(self, s: int) -> "LabelEntry":
        return replace(self, s=s)

    def with_cos(self, cos: int) -> "LabelEntry":
        return replace(self, cos=cos)

    def __str__(self) -> str:
        return (
            f"[label={self.label} cos={self.cos} s={self.s} ttl={self.ttl}]"
        )


def require_real_label(label: int) -> int:
    """Validate that ``label`` may be installed in a forwarding table.

    Reserved labels (0-15) have fixed semantics and may not be assigned
    to LSPs; passing one here is a control-plane bug.
    """
    if not 0 <= label <= LABEL_MAX:
        raise InvalidLabelError(f"label {label} outside 20-bit range")
    if label <= RESERVED_LABEL_MAX:
        raise InvalidLabelError(
            f"label {label} is reserved (0..{RESERVED_LABEL_MAX}) and cannot "
            "be assigned to an LSP"
        )
    return label
