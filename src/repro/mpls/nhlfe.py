"""Next Hop Label Forwarding Entries (RFC 3031 section 3.10).

An NHLFE says what to do with a packet once its label (or FEC) has been
resolved: which operation to apply to the stack, the outgoing label for
push/swap, the next hop, and the outgoing interface.  The operation
alphabet is shared with the hardware information base
(:class:`~repro.mpls.label.LabelOp`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mpls.errors import InvalidLabelError
from repro.mpls.label import IMPLICIT_NULL, LabelOp, require_real_label


@dataclass(frozen=True)
class NHLFE:
    """One forwarding action.

    Parameters
    ----------
    op:
        Stack operation.  ``PUSH`` and ``SWAP`` require ``out_label``;
        ``POP`` and ``NOOP`` forbid it (except that a swap to
        ``IMPLICIT_NULL`` is interpreted as penultimate-hop popping and
        normalized to a POP at construction, mirroring RFC 3032).
    out_label:
        Label to push or swap in.
    next_hop:
        Name of the neighbouring node the packet goes to; ``None`` for
        local delivery (egress to the layer-2 side).
    out_interface:
        Interface identifier on this node.
    cos:
        Optional CoS override applied to a pushed label entry.
    """

    op: LabelOp
    out_label: Optional[int] = None
    next_hop: Optional[str] = None
    out_interface: Optional[str] = None
    cos: Optional[int] = None

    def __post_init__(self) -> None:
        op = self.op
        label = self.out_label
        if op in (LabelOp.PUSH, LabelOp.SWAP):
            if label is None:
                raise InvalidLabelError(f"{op.name} requires an out_label")
            if label == IMPLICIT_NULL and op is LabelOp.SWAP:
                # Penultimate-hop popping: the downstream egress
                # advertised implicit null, meaning "don't send me a
                # label at all" -- normalize to POP.
                object.__setattr__(self, "op", LabelOp.POP)
                object.__setattr__(self, "out_label", None)
            else:
                require_real_label(label)
        elif label is not None:
            raise InvalidLabelError(f"{op.name} must not carry an out_label")
        if self.cos is not None and not 0 <= self.cos <= 7:
            raise InvalidLabelError(f"CoS {self.cos} out of 3-bit range")

    @property
    def is_php(self) -> bool:
        """True if this entry performs penultimate-hop popping
        (constructed as a swap to implicit null)."""
        return self.op is LabelOp.POP and self.next_hop is not None

    def __str__(self) -> str:
        parts = [self.op.name]
        if self.out_label is not None:
            parts.append(f"label={self.out_label}")
        if self.next_hop is not None:
            parts.append(f"nh={self.next_hop}")
        if self.out_interface is not None:
            parts.append(f"if={self.out_interface}")
        return f"NHLFE({' '.join(parts)})"
