"""The software label-switching engine.

This is the pure-software MPLS data plane: the baseline the paper's
hardware label stack modifier accelerates.  It performs exactly the
steps the paper's Figure 9 state machine performs -- search the
information base, verify, decrement the TTL, apply push/swap/pop -- but
as straight-line Python over the ILM/FTN tables.

Elementary-operation accounting lives on the telemetry layer: when the
process-wide :class:`~repro.obs.telemetry.Telemetry` is enabled, every
table lookup, entry scan, stack operation, TTL update and discard is
counted in the metrics registry (``repro_mpls_ops_total{node,op}``) and
the stack operations are additionally emitted as
:class:`~repro.obs.events.LabelOpApplied` events.  The legacy
:class:`OpCounts` tally is kept in step as a cheap per-engine view --
:mod:`repro.core.timing` still prices it into cycle estimates for the
hardware-vs-software comparison benchmarks, and existing callers of
``engine.counts`` keep working unchanged.

TTL handling follows the uniform model of RFC 3443, which is also what
the paper describes: the TTL travels with the packet, is decremented at
every router, and the packet is discarded when it would reach zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Union

from repro.mpls.errors import (
    LabelLookupMiss,
    NoRouteError,
    StackUnderflow,
)
from repro.mpls.label import (
    IPV4_EXPLICIT_NULL,
    IPV6_EXPLICIT_NULL,
    ROUTER_ALERT,
    LabelEntry,
    LabelOp,
)
from repro.mpls.stack import LabelStack
from repro.mpls.tables import FTN, ILM
from repro.net.packet import IPv4Packet, MPLSPacket
from repro.obs.events import LabelOpApplied
from repro.obs.telemetry import Telemetry, get_telemetry


class Action(Enum):
    """What the node should do with the processed packet."""

    FORWARD_MPLS = "forward-mpls"  # labelled, to next_hop over out_interface
    FORWARD_IP = "forward-ip"      # unlabelled, leaving the MPLS domain
    DELIVER_LOCAL = "deliver-local"  # router alert / addressed to this node
    DISCARD = "discard"


@dataclass(repr=False)
class OpCounts:
    """Tally of elementary data-plane operations.

    .. deprecated::
        New code should read these counts from the telemetry registry
        (``repro_mpls_ops_total{node,op}``, see :mod:`repro.obs`); this
        class remains as a compatibility shim because the software cost
        model in :mod:`repro.core.timing` prices each field and the
        benchmarks consume ``engine.counts`` directly.  The engine
        keeps both views in step, so existing callers need no change.
    """

    ftn_lookups: int = 0
    ilm_lookups: int = 0
    entries_scanned: int = 0
    pushes: int = 0
    pops: int = 0
    swaps: int = 0
    ttl_updates: int = 0
    discards: int = 0

    #: Registry ``op`` label for each field (the migration mapping).
    REGISTRY_OPS = {
        "ftn_lookups": "ftn-lookup",
        "ilm_lookups": "ilm-lookup",
        "entries_scanned": "entry-scanned",
        "pushes": "push",
        "pops": "pop",
        "swaps": "swap",
        "ttl_updates": "ttl-update",
        "discards": "discard",
    }

    def merged(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            ftn_lookups=self.ftn_lookups + other.ftn_lookups,
            ilm_lookups=self.ilm_lookups + other.ilm_lookups,
            entries_scanned=self.entries_scanned + other.entries_scanned,
            pushes=self.pushes + other.pushes,
            pops=self.pops + other.pops,
            swaps=self.swaps + other.swaps,
            ttl_updates=self.ttl_updates + other.ttl_updates,
            discards=self.discards + other.discards,
        )

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.REGISTRY_OPS}

    @property
    def total(self) -> int:
        return sum(self.as_dict().values())

    def summary(self) -> str:
        """One line, non-zero fields only -- for logs and benchmarks."""
        parts = [
            f"{self.REGISTRY_OPS[name]}={value}"
            for name, value in self.as_dict().items()
            if value
        ]
        return "OpCounts(" + (" ".join(parts) if parts else "all zero") + ")"

    __repr__ = summary

    def publish(self, telemetry: Telemetry, node: str) -> None:
        """Add this tally to the registry's ``repro_mpls_ops_total``
        (used when a run finished with telemetry enabled only at
        snapshot time)."""
        for name, value in self.as_dict().items():
            if value:
                telemetry.mpls_ops.labels(node, self.REGISTRY_OPS[name]).inc(
                    value
                )


@dataclass(frozen=True)
class ForwardingDecision:
    """The outcome of processing one packet at one node."""

    action: Action
    packet: Optional[Union[IPv4Packet, MPLSPacket]] = None
    next_hop: Optional[str] = None
    out_interface: Optional[str] = None
    reason: Optional[str] = None

    @property
    def forwarded(self) -> bool:
        return self.action in (Action.FORWARD_MPLS, Action.FORWARD_IP)


class ForwardingEngine:
    """Software MPLS forwarding over an ILM and an FTN.

    Parameters
    ----------
    ilm, ftn:
        The node's tables.  They may be shared with a control plane
        that updates them concurrently (generation counters let the
        embedded architecture detect that).
    node_name:
        Used in discard reasons for diagnosability.
    """

    def __init__(
        self,
        ilm: Optional[ILM] = None,
        ftn: Optional[FTN] = None,
        node_name: str = "lsr",
    ) -> None:
        self.ilm = ilm if ilm is not None else ILM()
        self.ftn = ftn if ftn is not None else FTN()
        self.node_name = node_name
        self.counts = OpCounts()
        #: Optional list the telemetry mirror appends to while set --
        #: the flow cache (:mod:`repro.mpls.fastpath`) records one
        #: scalar computation through this hook so a cache hit can
        #: replay identical registry increments and stack-op events.
        self.recorder: Optional[list] = None

    # -- telemetry mirroring ------------------------------------------------
    def _mirror(
        self, tel: Telemetry, op: str, amount: int = 1, _record: bool = True
    ) -> None:
        """One elementary operation onto the registry (enabled only)."""
        if _record and self.recorder is not None:
            self.recorder.append(("m", op, amount))
        tel.mpls_ops.labels(self.node_name, op).inc(amount)

    def _emit_stack_op(
        self,
        tel: Telemetry,
        op: str,
        label_in: Optional[int],
        label_out: Optional[int],
    ) -> None:
        if self.recorder is not None:
            self.recorder.append(("e", op, label_in, label_out))
        self._mirror(tel, op, _record=False)
        tel.events.emit(
            LabelOpApplied(
                node=self.node_name,
                op=op,
                label_in=label_in,
                label_out=label_out,
            )
        )

    # -- ingress (LER): unlabelled in, labelled out -------------------------
    def ingress(self, packet: IPv4Packet) -> ForwardingDecision:
        """Classify an unlabelled packet and push its first label.

        The paper: "When LERs receive a packet from a layer 2 network, a
        label is then attached to that packet and sent into the MPLS
        core network."
        """
        tel = get_telemetry()
        observing = tel.enabled
        self.counts.ftn_lookups += 1
        if observing:
            self._mirror(tel, "ftn-lookup")
        try:
            fec, nhlfe = self.ftn.lookup(packet)
        except NoRouteError as exc:
            self.counts.discards += 1
            if observing:
                self._mirror(tel, "discard")
            return ForwardingDecision(
                Action.DISCARD, reason=f"{self.node_name}: {exc}"
            )
        self.counts.entries_scanned += len(self.ftn)
        if observing:
            self._mirror(tel, "entry-scanned", len(self.ftn))
        if packet.ttl <= 1:
            self.counts.discards += 1
            if observing:
                self._mirror(tel, "discard")
            return ForwardingDecision(
                Action.DISCARD,
                reason=f"{self.node_name}: IPv4 TTL expired at ingress",
            )
        inner = packet.decremented()
        self.counts.ttl_updates += 1
        if observing:
            self._mirror(tel, "ttl-update")
        if nhlfe.op is not LabelOp.PUSH:
            # An FTN entry that does not push means the FEC is reachable
            # without labels (e.g. a directly attached network).
            return ForwardingDecision(
                Action.FORWARD_IP,
                packet=inner,
                next_hop=nhlfe.next_hop,
                out_interface=nhlfe.out_interface,
            )
        cos = nhlfe.cos if nhlfe.cos is not None else _dscp_to_cos(packet.dscp)
        entry = LabelEntry(
            label=nhlfe.out_label,  # type: ignore[arg-type]
            cos=cos,
            ttl=inner.ttl,
        )
        stack = LabelStack().push(entry)
        self.counts.pushes += 1
        if observing:
            self._emit_stack_op(tel, "push", None, entry.label)
        return ForwardingDecision(
            Action.FORWARD_MPLS,
            packet=MPLSPacket(stack, inner),
            next_hop=nhlfe.next_hop,
            out_interface=nhlfe.out_interface,
        )

    # -- transit / egress: labelled in ------------------------------------
    def transit(self, packet: MPLSPacket) -> ForwardingDecision:
        """Process a labelled packet: the LSR fast path.

        Mirrors the paper's Figure 9: search the information base for
        the top label, discard on miss or TTL expiry, otherwise apply
        the stored operation.
        """
        tel = get_telemetry()
        observing = tel.enabled
        try:
            top = packet.stack.top
        except StackUnderflow:
            self.counts.discards += 1
            if observing:
                self._mirror(tel, "discard")
            return ForwardingDecision(
                Action.DISCARD,
                reason=f"{self.node_name}: labelled packet with empty stack",
            )

        if top.label == ROUTER_ALERT:
            return ForwardingDecision(Action.DELIVER_LOCAL, packet=packet)
        if top.label in (IPV4_EXPLICIT_NULL, IPV6_EXPLICIT_NULL):
            return self._pop_and_continue(packet, top)

        self.counts.ilm_lookups += 1
        self.counts.entries_scanned += len(self.ilm)
        if observing:
            self._mirror(tel, "ilm-lookup")
            self._mirror(tel, "entry-scanned", len(self.ilm))
        try:
            nhlfe = self.ilm.lookup(top.label)
        except LabelLookupMiss:
            self.counts.discards += 1
            if observing:
                self._mirror(tel, "discard")
            return ForwardingDecision(
                Action.DISCARD,
                reason=(
                    f"{self.node_name}: no ILM entry for label {top.label}"
                ),
            )

        if top.ttl <= 1:
            self.counts.discards += 1
            if observing:
                self._mirror(tel, "discard")
            return ForwardingDecision(
                Action.DISCARD,
                reason=f"{self.node_name}: MPLS TTL expired",
            )
        top = top.decremented()
        self.counts.ttl_updates += 1
        if observing:
            self._mirror(tel, "ttl-update")

        if nhlfe.op is LabelOp.SWAP:
            self.counts.swaps += 1
            if observing:
                self._emit_stack_op(tel, "swap", top.label, nhlfe.out_label)
            new_top = top.with_label(nhlfe.out_label)  # type: ignore[arg-type]
            stack = packet.stack.swap(new_top)
            return ForwardingDecision(
                Action.FORWARD_MPLS,
                packet=packet.with_stack(stack),
                next_hop=nhlfe.next_hop,
                out_interface=nhlfe.out_interface,
            )

        if nhlfe.op is LabelOp.PUSH:
            # Tunnel ingress inside the domain: swap semantics do not
            # apply; the existing top stays (with its decremented TTL)
            # and a new entry goes above it.  A push beyond the
            # supported depth discards, mirroring the hardware's
            # VERIFY_INFO consistency check.
            max_depth = packet.stack.max_depth
            if max_depth is not None and packet.stack.depth >= max_depth:
                self.counts.discards += 1
                if observing:
                    self._mirror(tel, "discard")
                return ForwardingDecision(
                    Action.DISCARD,
                    reason=(
                        f"{self.node_name}: push would exceed the "
                        f"{max_depth}-level stack limit"
                    ),
                )
            self.counts.pushes += 1
            if observing:
                self._emit_stack_op(tel, "push", top.label, nhlfe.out_label)
            stack = packet.stack.swap(top)
            cos = nhlfe.cos if nhlfe.cos is not None else top.cos
            stack = stack.push(
                LabelEntry(
                    label=nhlfe.out_label,  # type: ignore[arg-type]
                    cos=cos,
                    ttl=top.ttl,
                )
            )
            return ForwardingDecision(
                Action.FORWARD_MPLS,
                packet=packet.with_stack(stack),
                next_hop=nhlfe.next_hop,
                out_interface=nhlfe.out_interface,
            )

        if nhlfe.op is LabelOp.POP:
            return self._pop_and_continue(
                packet,
                top,
                next_hop=nhlfe.next_hop,
                out_interface=nhlfe.out_interface,
            )

        # NOOP: forward unchanged except for the TTL update.
        stack = packet.stack.swap(top)
        return ForwardingDecision(
            Action.FORWARD_MPLS,
            packet=packet.with_stack(stack),
            next_hop=nhlfe.next_hop,
            out_interface=nhlfe.out_interface,
        )

    def _pop_and_continue(
        self,
        packet: MPLSPacket,
        top: LabelEntry,
        next_hop: Optional[str] = None,
        out_interface: Optional[str] = None,
    ) -> ForwardingDecision:
        """Pop the top entry, propagating the TTL downward (uniform
        model): into the next entry, or into the IP header at the
        bottom of the stack."""
        tel = get_telemetry()
        observing = tel.enabled
        self.counts.pops += 1
        _, rest = packet.stack.pop()
        if rest.is_empty:
            inner = packet.inner
            inner = inner.with_ttl(min(top.ttl, inner.ttl))
            self.counts.ttl_updates += 1
            if observing:
                self._emit_stack_op(tel, "pop", top.label, None)
                self._mirror(tel, "ttl-update")
            return ForwardingDecision(
                Action.FORWARD_IP,
                packet=inner,
                next_hop=next_hop,
                out_interface=out_interface,
            )
        exposed = rest.top.with_ttl(min(top.ttl, rest.top.ttl))
        rest = rest.swap(exposed)
        self.counts.ttl_updates += 1
        if observing:
            self._emit_stack_op(tel, "pop", top.label, exposed.label)
            self._mirror(tel, "ttl-update")
        return ForwardingDecision(
            Action.FORWARD_MPLS,
            packet=packet.with_stack(rest),
            next_hop=next_hop,
            out_interface=out_interface,
        )

    # -- convenience --------------------------------------------------------
    def process(
        self, packet: Union[IPv4Packet, MPLSPacket]
    ) -> ForwardingDecision:
        """Dispatch on packet kind: labelled -> transit, else ingress."""
        if isinstance(packet, MPLSPacket):
            return self.transit(packet)
        return self.ingress(packet)

    def reset_counts(self) -> None:
        self.counts = OpCounts()


def _dscp_to_cos(dscp: int) -> int:
    """Default DSCP -> 3-bit CoS mapping: the DSCP class selector bits.

    EF (46) maps to 5, CS-classes map to their class number -- the
    conventional mapping used when no explicit policy is configured.
    """
    return (dscp >> 3) & 0x7
