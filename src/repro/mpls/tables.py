"""The forwarding tables of RFC 3031: ILM and FTN.

* :class:`ILM` (Incoming Label Map) maps an incoming label to an NHLFE.
  This is what the paper's information base implements in hardware for
  levels 2 and 3 (label -> new label + operation).
* :class:`FTN` (FEC-To-NHLFE) maps a forwarding equivalence class to an
  NHLFE at the ingress LER.  The hardware realizes the common case --
  destination-address keying -- as information-base level 1, where the
  index memory holds 32-bit packet identifiers.

Both tables track a generation counter so the embedded architecture can
tell when the software control plane has changed them and the hardware
information base needs re-synchronizing.

Two robustness mechanisms sit on top of the plain maps:

* **Shadow-bank transactions** (``begin`` / ``commit`` / ``rollback``).
  While a transaction is open, mutations go to a staged copy of the
  table; lookups keep reading the active bank.  ``commit`` swaps the
  banks in one step and bumps the generation exactly once, which is the
  software analogue of the hardware driver's double-buffered info-base
  banks -- no packet ever observes a half-programmed table, and a crash
  mid-transaction rolls back to the pre-transaction state.
* **Stale marking** (RFC 3478-style graceful restart).  When a node's
  control plane restarts warm, surviving entries are stale-marked and
  keep forwarding; a re-``install`` refreshes an entry in place, and
  ``flush_stale`` removes whatever was never refreshed once the
  forwarding-state holding timer expires.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from repro.mpls.errors import LabelLookupMiss, NoRouteError
from repro.mpls.label import require_real_label

if TYPE_CHECKING:  # annotation-only; avoids the fec <-> net import cycle
    from repro.mpls.fec import FEC
from repro.mpls.nhlfe import NHLFE
from repro.net.packet import IPv4Packet


class ILM:
    """Incoming Label Map: ``label -> NHLFE``.

    Lookups are per-platform label space (one table per router), which
    is what the paper's single information base models.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, NHLFE] = {}
        self._staged: Optional[Dict[int, NHLFE]] = None
        self._staged_refreshed: Set[int] = set()
        self._stale: Set[int] = set()
        self.generation = 0

    # -- shadow-bank transaction ------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._staged is not None

    def begin(self) -> None:
        """Open a transaction: further mutations go to a shadow bank."""
        if self._staged is not None:
            raise RuntimeError("ILM transaction already open")
        self._staged = dict(self._entries)
        self._staged_refreshed = set()

    def commit(self) -> None:
        """Atomically swap the shadow bank in (one generation bump).

        A commit that changed nothing skips the bump, so hardware nodes
        don't resynchronize their info base for a no-op swap."""
        if self._staged is None:
            raise RuntimeError("no ILM transaction open")
        changed = self._staged != self._entries
        self._entries = self._staged
        self._stale -= self._staged_refreshed
        self._stale &= set(self._entries)
        self._staged = None
        self._staged_refreshed = set()
        if changed:
            self.generation += 1

    def rollback(self) -> None:
        """Discard the shadow bank; the active table is untouched."""
        if self._staged is None:
            raise RuntimeError("no ILM transaction open")
        self._staged = None
        self._staged_refreshed = set()

    # -- mutation ---------------------------------------------------

    def install(self, label: int, nhlfe: NHLFE) -> None:
        require_real_label(label)
        if self._staged is not None:
            self._staged[label] = nhlfe
            self._staged_refreshed.add(label)
        else:
            self._entries[label] = nhlfe
            self._stale.discard(label)
            self.generation += 1

    def remove(self, label: int) -> None:
        bank = self._staged if self._staged is not None else self._entries
        if label not in bank:
            raise KeyError(f"label {label} not installed")
        del bank[label]
        if self._staged is None:
            self._stale.discard(label)
            self.generation += 1

    def lookup(self, label: int) -> NHLFE:
        try:
            return self._entries[label]
        except KeyError:
            raise LabelLookupMiss(f"no ILM entry for label {label}") from None

    def get(self, label: int) -> Optional[NHLFE]:
        return self._entries.get(label)

    def __contains__(self, label: int) -> bool:
        return label in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[int, NHLFE]]:
        return iter(self._entries.items())

    def labels(self) -> List[int]:
        return sorted(self._entries)

    def clear(self) -> None:
        if self._staged is not None:
            self._staged.clear()
            self._staged_refreshed.clear()
        else:
            self._entries.clear()
            self._stale.clear()
            self.generation += 1

    # -- graceful-restart stale marking -----------------------------

    def mark_all_stale(self) -> int:
        """Stale-mark every installed entry; returns how many."""
        self._stale = set(self._entries)
        return len(self._stale)

    def mark_stale(self, label: int) -> None:
        if label in self._entries:
            self._stale.add(label)

    def is_stale(self, label: int) -> bool:
        return label in self._stale

    def stale_labels(self) -> List[int]:
        return sorted(self._stale)

    def flush_stale(self) -> List[int]:
        """Remove entries still stale-marked (hold timer expired)."""
        removed = sorted(self._stale & set(self._entries))
        for label in removed:
            del self._entries[label]
        self._stale.clear()
        if removed:
            self.generation += 1
        return removed


class FTN:
    """FEC-To-NHLFE map, resolved most-specific-first.

    Entries are kept sorted by descending FEC specificity; insertion is
    O(n) and lookup O(n) in the number of FECs, which matches both real
    LER software (a RIB walk) and the linear search of the paper's
    hardware information base.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[FEC, NHLFE]] = []
        self._staged: Optional[List[Tuple[FEC, NHLFE]]] = None
        self._staged_refreshed: Set[FEC] = set()
        self._stale: Set[FEC] = set()
        self.generation = 0

    # -- shadow-bank transaction ------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._staged is not None

    def begin(self) -> None:
        """Open a transaction: further mutations go to a shadow bank."""
        if self._staged is not None:
            raise RuntimeError("FTN transaction already open")
        self._staged = list(self._entries)
        self._staged_refreshed = set()

    def commit(self) -> None:
        """Atomically swap the shadow bank in (one generation bump).

        A commit that changed nothing skips the bump, so hardware nodes
        don't resynchronize their info base for a no-op swap."""
        if self._staged is None:
            raise RuntimeError("no FTN transaction open")
        changed = self._staged != self._entries
        self._entries = self._staged
        self._stale -= self._staged_refreshed
        self._stale &= {f for f, _ in self._entries}
        self._staged = None
        self._staged_refreshed = set()
        if changed:
            self.generation += 1

    def rollback(self) -> None:
        """Discard the shadow bank; the active table is untouched."""
        if self._staged is None:
            raise RuntimeError("no FTN transaction open")
        self._staged = None
        self._staged_refreshed = set()

    # -- mutation ---------------------------------------------------

    def install(self, fec: FEC, nhlfe: NHLFE) -> None:
        if self._staged is not None:
            self._staged = [(f, n) for f, n in self._staged if f != fec]
            self._staged.append((fec, nhlfe))
            self._staged.sort(key=lambda pair: -pair[0].specificity)
            self._staged_refreshed.add(fec)
        else:
            self._entries = [(f, n) for f, n in self._entries if f != fec]
            self._entries.append((fec, nhlfe))
            self._entries.sort(key=lambda pair: -pair[0].specificity)
            self._stale.discard(fec)
            self.generation += 1

    def remove(self, fec: FEC) -> None:
        bank = self._staged if self._staged is not None else self._entries
        before = len(bank)
        kept = [(f, n) for f, n in bank if f != fec]
        if len(kept) == before:
            raise KeyError(f"FEC {fec!r} not installed")
        if self._staged is not None:
            self._staged = kept
        else:
            self._entries = kept
            self._stale.discard(fec)
            self.generation += 1

    def lookup(self, packet: IPv4Packet) -> Tuple[FEC, NHLFE]:
        for fec, nhlfe in self._entries:
            if fec.matches(packet):
                return fec, nhlfe
        raise NoRouteError(f"no FEC matches packet to {packet.dst}")

    def get(self, packet: IPv4Packet) -> Optional[Tuple[FEC, NHLFE]]:
        try:
            return self.lookup(packet)
        except NoRouteError:
            return None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[FEC, NHLFE]]:
        return iter(self._entries)

    def clear(self) -> None:
        if self._staged is not None:
            self._staged.clear()
            self._staged_refreshed.clear()
        else:
            self._entries.clear()
            self._stale.clear()
            self.generation += 1

    # -- graceful-restart stale marking -----------------------------

    def mark_all_stale(self) -> int:
        """Stale-mark every installed entry; returns how many."""
        self._stale = {f for f, _ in self._entries}
        return len(self._stale)

    def mark_stale(self, fec: FEC) -> None:
        if any(f == fec for f, _ in self._entries):
            self._stale.add(fec)

    def is_stale(self, fec: FEC) -> bool:
        return fec in self._stale

    def stale_fecs(self) -> List[FEC]:
        # Specificity order (the table's own order) keeps this
        # deterministic without requiring FECs to be sortable.
        return [f for f, _ in self._entries if f in self._stale]

    def flush_stale(self) -> List[FEC]:
        """Remove entries still stale-marked (hold timer expired)."""
        removed = [f for f, _ in self._entries if f in self._stale]
        if removed:
            self._entries = [
                (f, n) for f, n in self._entries if f not in self._stale
            ]
            self.generation += 1
        self._stale.clear()
        return removed
