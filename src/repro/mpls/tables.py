"""The forwarding tables of RFC 3031: ILM and FTN.

* :class:`ILM` (Incoming Label Map) maps an incoming label to an NHLFE.
  This is what the paper's information base implements in hardware for
  levels 2 and 3 (label -> new label + operation).
* :class:`FTN` (FEC-To-NHLFE) maps a forwarding equivalence class to an
  NHLFE at the ingress LER.  The hardware realizes the common case --
  destination-address keying -- as information-base level 1, where the
  index memory holds 32-bit packet identifiers.

Both tables track a generation counter so the embedded architecture can
tell when the software control plane has changed them and the hardware
information base needs re-synchronizing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.mpls.errors import LabelLookupMiss, NoRouteError
from repro.mpls.label import require_real_label

if TYPE_CHECKING:  # annotation-only; avoids the fec <-> net import cycle
    from repro.mpls.fec import FEC
from repro.mpls.nhlfe import NHLFE
from repro.net.packet import IPv4Packet


class ILM:
    """Incoming Label Map: ``label -> NHLFE``.

    Lookups are per-platform label space (one table per router), which
    is what the paper's single information base models.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, NHLFE] = {}
        self.generation = 0

    def install(self, label: int, nhlfe: NHLFE) -> None:
        require_real_label(label)
        self._entries[label] = nhlfe
        self.generation += 1

    def remove(self, label: int) -> None:
        if label not in self._entries:
            raise KeyError(f"label {label} not installed")
        del self._entries[label]
        self.generation += 1

    def lookup(self, label: int) -> NHLFE:
        try:
            return self._entries[label]
        except KeyError:
            raise LabelLookupMiss(f"no ILM entry for label {label}") from None

    def get(self, label: int) -> Optional[NHLFE]:
        return self._entries.get(label)

    def __contains__(self, label: int) -> bool:
        return label in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[int, NHLFE]]:
        return iter(self._entries.items())

    def labels(self) -> List[int]:
        return sorted(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.generation += 1


class FTN:
    """FEC-To-NHLFE map, resolved most-specific-first.

    Entries are kept sorted by descending FEC specificity; insertion is
    O(n) and lookup O(n) in the number of FECs, which matches both real
    LER software (a RIB walk) and the linear search of the paper's
    hardware information base.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[FEC, NHLFE]] = []
        self.generation = 0

    def install(self, fec: FEC, nhlfe: NHLFE) -> None:
        self._entries = [(f, n) for f, n in self._entries if f != fec]
        self._entries.append((fec, nhlfe))
        self._entries.sort(key=lambda pair: -pair[0].specificity)
        self.generation += 1

    def remove(self, fec: FEC) -> None:
        before = len(self._entries)
        self._entries = [(f, n) for f, n in self._entries if f != fec]
        if len(self._entries) == before:
            raise KeyError(f"FEC {fec!r} not installed")
        self.generation += 1

    def lookup(self, packet: IPv4Packet) -> Tuple[FEC, NHLFE]:
        for fec, nhlfe in self._entries:
            if fec.matches(packet):
                return fec, nhlfe
        raise NoRouteError(f"no FEC matches packet to {packet.dst}")

    def get(self, packet: IPv4Packet) -> Optional[Tuple[FEC, NHLFE]]:
        try:
            return self.lookup(packet)
        except NoRouteError:
            return None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[FEC, NHLFE]]:
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.generation += 1
