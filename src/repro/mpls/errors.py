"""MPLS protocol error taxonomy.

Every abnormal condition the data plane can hit has a dedicated
exception, because the paper's hardware distinguishes them too: a lookup
miss and an expired TTL both discard the packet (Figure 9's DISCARD
path), while stack misuse is a configuration error that must never be
silent.
"""

from __future__ import annotations


class MPLSError(Exception):
    """Base class for all MPLS protocol errors."""


class TTLExpired(MPLSError):
    """The TTL reached zero while transiting a router; packet dropped."""


class LabelLookupMiss(MPLSError):
    """An incoming label has no ILM entry; packet dropped.

    Corresponds to the ``packetdiscard`` outcome of the paper's
    Figure 16 simulation.
    """


class NoRouteError(MPLSError):
    """An unlabelled packet matched no FEC at the ingress LER."""


class StackUnderflow(MPLSError):
    """A pop or swap was attempted on an empty label stack."""


class StackDepthExceeded(MPLSError):
    """A push would exceed the configured maximum stack depth.

    The paper (and its information base) supports three levels; the
    software engine makes the bound configurable but enforces it.
    """


class InvalidLabelError(MPLSError, ValueError):
    """A label, CoS, or TTL field value is out of range, or a reserved
    label was used where a real label is required."""
