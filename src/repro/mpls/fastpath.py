"""The batched data-plane fast path: per-node flow caching.

The scalar data plane re-derives the full ILM/FTN decision for every
packet, even though consecutive packets of one flow are byte-identical
except for their uid/seq.  This module memoizes the complete
ILM -> NHLFE -> egress decision per *flow key* -- the tuple of fields
the :class:`~repro.mpls.forwarding.ForwardingEngine` actually consults
-- and replays it for every subsequent packet with the same key,
exactly as the paper's embedded architecture collapses the lookup into
one information-base search.

Equivalence contract (enforced by ``tests/integration/
test_batching_equivalence.py``):

* a replayed decision is value-identical to the decision the engine
  would have produced (action, output packet, next hop, interface,
  discard reason),
* the engine's :class:`~repro.mpls.forwarding.OpCounts` advance by the
  same deltas,
* with telemetry enabled, the same ``repro_mpls_ops_total`` increments
  and :class:`~repro.obs.events.LabelOpApplied` events are emitted, in
  the same order,
* with telemetry disabled, a replay performs no telemetry reads beyond
  the one audited ``tel.enabled`` boolean.

Invalidation is wired to the transactional table API: the ILM/FTN
``generation`` counters bump on every visible mutation of the active
bank (install/remove/clear, transaction commit, stale flush) -- which
covers LDP withdraws, FRR switchovers, graceful-restart flushes and
consistency-audit repairs -- so the cache compares one generation pair
per packet and flushes wholesale when it moved.  A transaction
*rollback* leaves the active bank untouched and does not bump the
generation; cached decisions correctly survive it.

The cache key captures every input field the engine reads:

* labelled packets: the exact label-stack entries (label, CoS, S, TTL),
  the stack's depth limit, and the inner IPv4 TTL (consulted when a pop
  exposes the IP header),
* unlabelled packets: destination address, IPv4 TTL and DSCP.

Anything outside the key (uid, flow id, payload, source address) is
threaded through from the incoming packet at replay time, never from
the cached exemplar.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple, Union

from repro.mpls.forwarding import (
    Action,
    ForwardingDecision,
    ForwardingEngine,
    OpCounts,
)
from repro.net.packet import IPv4Packet, MPLSPacket
from repro.obs.events import LabelOpApplied
from repro.obs.telemetry import get_telemetry

#: Default bound on cached decisions per node.  Each entry is one flow
#: shape; 64k covers the 100k-concurrent-flow target with the normal
#: per-hop key collapse (many flows share a label/CoS shape mid-path).
DEFAULT_CAPACITY = 65_536

# How to rebuild the output packet from the incoming one at replay
# time.  Stored per cached decision; see _build().
_DISCARD = 0        # no packet
_LOCAL = 1          # the incoming packet itself (router alert)
_IP_INGRESS = 2     # packet.decremented()
_MPLS_INGRESS = 3   # MPLSPacket(stack, packet.decremented())
_MPLS_TRANSIT = 4   # packet.with_stack(stack)
_IP_TRANSIT = 5     # packet.inner.with_ttl(inner_ttl)


def key_of(packet: Union[IPv4Packet, MPLSPacket]) -> tuple:
    """The flow key: exactly the fields the engine consults."""
    if isinstance(packet, MPLSPacket):
        return (
            packet.stack.entries,
            packet.stack.max_depth,
            packet.inner.ttl,
        )
    return (packet.dst.value, packet.ttl, packet.dscp)


class FlowCacheInconsistency(AssertionError):
    """A cross-checked cache hit diverged from a fresh lookup."""


class _CachedDecision:
    """One memoized decision plus everything needed to replay it."""

    __slots__ = (
        "action",
        "builder",
        "stack",
        "inner_ttl",
        "next_hop",
        "out_interface",
        "reason",
        "counts",
        "ops",
        "observed",
    )

    def __init__(
        self,
        action: Action,
        builder: int,
        stack,
        inner_ttl: Optional[int],
        next_hop: Optional[str],
        out_interface: Optional[str],
        reason: Optional[str],
        counts: Tuple[int, ...],
        ops: Tuple[tuple, ...],
        observed: bool,
    ) -> None:
        self.action = action
        self.builder = builder
        self.stack = stack
        self.inner_ttl = inner_ttl
        self.next_hop = next_hop
        self.out_interface = out_interface
        self.reason = reason
        self.counts = counts
        self.ops = ops
        self.observed = observed


class FlowCache:
    """Memoizes a :class:`ForwardingEngine`'s per-flow decisions.

    Parameters
    ----------
    engine:
        The engine whose decisions are cached.  The cache reads the
        engine's ILM/FTN generation counters for invalidation and keeps
        its ``counts`` tally advancing exactly as scalar processing
        would.
    capacity:
        Bound on cached flow shapes; least recently used entries are
        evicted at capacity.
    cross_check:
        When true, every cache hit is re-derived with a scratch engine
        over the same tables and compared field by field; a divergence
        raises :class:`FlowCacheInconsistency`.  For the property tests
        -- the scratch lookup mirrors telemetry, so only use it with
        telemetry disabled.
    """

    def __init__(
        self,
        engine: ForwardingEngine,
        capacity: int = DEFAULT_CAPACITY,
        cross_check: bool = False,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"flow cache capacity must be >= 1: {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.cross_check = cross_check
        self._entries: "OrderedDict[tuple, _CachedDecision]" = OrderedDict()
        self._generations: Tuple[int, int] = (
            engine.ilm.generation,
            engine.ftn.generation,
        )
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        #: the decision served by the last :meth:`process` call, for
        #: :meth:`scale_last` (aggregate processing)
        self._last: Optional[_CachedDecision] = None

    # -- keys ---------------------------------------------------------------
    key_of = staticmethod(key_of)

    # -- the fast path ------------------------------------------------------
    def process(
        self, packet: Union[IPv4Packet, MPLSPacket]
    ) -> ForwardingDecision:
        """Engine-equivalent processing: replay a cached decision, or
        compute one scalar decision and memoize it."""
        generations = (
            self.engine.ilm.generation,
            self.engine.ftn.generation,
        )
        if generations != self._generations:
            # any visible table mutation since the last packet: the
            # whole cache is suspect, flush it wholesale
            self._entries.clear()
            self._generations = generations
            self.invalidations += 1
        key = self.key_of(packet)
        cached = self._entries.get(key)
        observing = get_telemetry().enabled
        if cached is not None and cached.observed == observing:
            self.hits += 1
            self._entries.move_to_end(key)
            self._last = cached
            decision = self._replay(packet, cached, observing)
            if self.cross_check:
                self._verify(packet, decision)
            return decision
        self.misses += 1
        return self._fill(packet, key, observing)

    def scale_last(self, extra: int) -> None:
        """Advance counters as if the last processed packet had been
        ``extra`` more identical packets (aggregate processing).

        Op counts and registry mirrors scale exactly; per-packet
        LabelOpApplied events are not multiplied -- aggregates trade
        event granularity for speed (see :mod:`repro.net.aggregate`).
        """
        cached = self._last
        if cached is None or extra <= 0:
            return
        counts = self.engine.counts
        (
            ftn_lookups,
            ilm_lookups,
            entries_scanned,
            pushes,
            pops,
            swaps,
            ttl_updates,
            discards,
        ) = cached.counts
        counts.ftn_lookups += ftn_lookups * extra
        counts.ilm_lookups += ilm_lookups * extra
        counts.entries_scanned += entries_scanned * extra
        counts.pushes += pushes * extra
        counts.pops += pops * extra
        counts.swaps += swaps * extra
        counts.ttl_updates += ttl_updates * extra
        counts.discards += discards * extra
        if cached.observed and cached.ops:
            tel = get_telemetry()
            if tel.enabled:
                mpls_ops = tel.mpls_ops
                node = self.engine.node_name
                for op in cached.ops:
                    amount = op[2] if op[0] == "m" else 1
                    mpls_ops.labels(node, op[1]).inc(amount * extra)

    # -- miss: scalar compute + record --------------------------------------
    def _fill(
        self,
        packet: Union[IPv4Packet, MPLSPacket],
        key: tuple,
        observing: bool,
    ) -> ForwardingDecision:
        engine = self.engine
        before = engine.counts
        engine.counts = OpCounts()
        recorder: list = []
        engine.recorder = recorder
        try:
            decision = engine.process(packet)
        finally:
            engine.recorder = None
            delta = engine.counts
            engine.counts = before.merged(delta)
        builder, stack, inner_ttl = self._template_of(packet, decision)
        self._last = self._entries[key] = _CachedDecision(
            decision.action,
            builder,
            stack,
            inner_ttl,
            decision.next_hop,
            decision.out_interface,
            decision.reason,
            (
                delta.ftn_lookups,
                delta.ilm_lookups,
                delta.entries_scanned,
                delta.pushes,
                delta.pops,
                delta.swaps,
                delta.ttl_updates,
                delta.discards,
            ),
            tuple(recorder),
            observing,
        )
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return decision

    @staticmethod
    def _template_of(
        packet: Union[IPv4Packet, MPLSPacket],
        decision: ForwardingDecision,
    ) -> Tuple[int, Optional[object], Optional[int]]:
        """How to rebuild ``decision.packet`` from a future packet with
        the same key."""
        if decision.action is Action.DISCARD:
            return _DISCARD, None, None
        if decision.action is Action.DELIVER_LOCAL:
            return _LOCAL, None, None
        out = decision.packet
        if isinstance(packet, MPLSPacket):
            if isinstance(out, MPLSPacket):
                return _MPLS_TRANSIT, out.stack, None
            return _IP_TRANSIT, None, out.ttl
        if isinstance(out, MPLSPacket):
            return _MPLS_INGRESS, out.stack, None
        return _IP_INGRESS, None, None

    # -- hit: replay ---------------------------------------------------------
    def _replay(
        self,
        packet: Union[IPv4Packet, MPLSPacket],
        cached: _CachedDecision,
        observing: bool,
    ) -> ForwardingDecision:
        counts = self.engine.counts
        (
            ftn_lookups,
            ilm_lookups,
            entries_scanned,
            pushes,
            pops,
            swaps,
            ttl_updates,
            discards,
        ) = cached.counts
        counts.ftn_lookups += ftn_lookups
        counts.ilm_lookups += ilm_lookups
        counts.entries_scanned += entries_scanned
        counts.pushes += pushes
        counts.pops += pops
        counts.swaps += swaps
        counts.ttl_updates += ttl_updates
        counts.discards += discards
        if observing and cached.ops:
            self._replay_ops(cached.ops)
        return ForwardingDecision(
            cached.action,
            packet=self._build(packet, cached),
            next_hop=cached.next_hop,
            out_interface=cached.out_interface,
            reason=cached.reason,
        )

    def _replay_ops(self, ops: Tuple[tuple, ...]) -> None:
        """Re-emit the telemetry of the recorded scalar computation:
        the same registry increments and LabelOpApplied events as
        :meth:`ForwardingEngine._mirror` /
        :meth:`ForwardingEngine._emit_stack_op` produced at fill time."""
        tel = get_telemetry()
        node = self.engine.node_name
        mpls_ops = tel.mpls_ops
        for op in ops:
            if op[0] == "m":
                mpls_ops.labels(node, op[1]).inc(op[2])
            else:  # ("e", op, label_in, label_out)
                mpls_ops.labels(node, op[1]).inc()
                tel.events.emit(
                    LabelOpApplied(
                        node=node,
                        op=op[1],
                        label_in=op[2],
                        label_out=op[3],
                    )
                )

    @staticmethod
    def _build(
        packet: Union[IPv4Packet, MPLSPacket], cached: _CachedDecision
    ) -> Optional[Union[IPv4Packet, MPLSPacket]]:
        builder = cached.builder
        if builder == _MPLS_TRANSIT:
            return packet.with_stack(cached.stack)
        if builder == _MPLS_INGRESS:
            return MPLSPacket(cached.stack, packet.decremented())
        if builder == _IP_TRANSIT:
            return packet.inner.with_ttl(cached.inner_ttl)
        if builder == _IP_INGRESS:
            return packet.decremented()
        if builder == _LOCAL:
            return packet
        return None  # _DISCARD

    # -- cross-checking ------------------------------------------------------
    def _verify(
        self,
        packet: Union[IPv4Packet, MPLSPacket],
        replayed: ForwardingDecision,
    ) -> None:
        scratch = ForwardingEngine(
            self.engine.ilm, self.engine.ftn, self.engine.node_name
        )
        fresh = scratch.process(packet)
        if (
            fresh.action is not replayed.action
            or fresh.packet != replayed.packet
            or fresh.next_hop != replayed.next_hop
            or fresh.out_interface != replayed.out_interface
            or fresh.reason != replayed.reason
        ):
            raise FlowCacheInconsistency(
                f"{self.engine.node_name}: stale cached decision for "
                f"{packet!r}: cached {replayed!r} != fresh {fresh!r}"
            )

    # -- inspection ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }
