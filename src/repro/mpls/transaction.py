"""Atomic multi-table programming: :class:`TableTransaction`.

Reconvergence touches several tables on several routers (every FTN and
ILM along an LSP).  Committing those writes one at a time would let a
packet observe a half-programmed network -- e.g. an ingress FTN already
pointing at a label the downstream ILM has not accepted yet.

:class:`TableTransaction` groups any number of :class:`~repro.mpls.tables.ILM`
/ :class:`~repro.mpls.tables.FTN` tables under one shadow-bank
transaction.  Between :meth:`begin` and :meth:`commit` every mutation
lands in per-table staging banks while the data plane keeps reading the
active banks; :meth:`commit` swaps all banks (each a single generation
bump, which on hardware nodes becomes a single-cycle bank swap in the
info-base driver); :meth:`rollback` discards the staging banks, leaving
the pre-transaction tables untouched.

Used as a context manager, an exception (a crash mid-reconvergence)
rolls back automatically:

    with TableTransaction([node.ftn, node.ilm]):
        ...  # stage the new forwarding state
    # committed on clean exit, rolled back on exception
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Union

from repro.mpls.tables import FTN, ILM

Table = Union[ILM, FTN]


class TableTransaction:
    """A shadow-bank transaction spanning several ILM/FTN tables."""

    @classmethod
    def for_nodes(cls, nodes: Mapping[str, object]) -> "TableTransaction":
        """A transaction over every node's ILM and FTN, in sorted node
        order -- the shape a centralized controller resync wants."""
        tables: List[Table] = []
        for name in sorted(nodes):
            node = nodes[name]
            tables.append(node.ilm)  # type: ignore[attr-defined]
            tables.append(node.ftn)  # type: ignore[attr-defined]
        return cls(tables)

    def __init__(self, tables: Iterable[Table]) -> None:
        # Dedup while preserving order: the same table may be listed
        # once per role (e.g. a node acting as both LER and LSR).
        self.tables: List[Table] = []
        seen = set()
        for table in tables:
            if id(table) not in seen:
                seen.add(id(table))
                self.tables.append(table)
        self._open = False

    @property
    def in_transaction(self) -> bool:
        return self._open

    def begin(self) -> "TableTransaction":
        if self._open:
            raise RuntimeError("transaction already open")
        opened: List[Table] = []
        try:
            for table in self.tables:
                table.begin()
                opened.append(table)
        except Exception:
            for table in opened:
                table.rollback()
            raise
        self._open = True
        return self

    def commit(self) -> None:
        if not self._open:
            raise RuntimeError("no transaction open")
        for table in self.tables:
            table.commit()
        self._open = False

    def rollback(self) -> None:
        if not self._open:
            raise RuntimeError("no transaction open")
        for table in self.tables:
            table.rollback()
        self._open = False

    def __enter__(self) -> "TableTransaction":
        if not self._open:
            self.begin()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._open:
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
