"""MPLS protocol library: the software reference implementation.

This subpackage implements the MPLS data plane as described by RFC 3031
(architecture) and RFC 3032 (label stack encoding), which the paper's
hardware accelerates:

* :mod:`repro.mpls.label` -- the 32-bit label stack entry of the paper's
  Figure 5 (20-bit label / 3-bit CoS / S bit / 8-bit TTL), reserved
  label values, and the label operation alphabet shared with the
  hardware information base;
* :mod:`repro.mpls.stack` -- label stack semantics (push/pop/swap, the
  S-bit invariant, TTL propagation);
* :mod:`repro.mpls.fec` -- forwarding equivalence classes;
* :mod:`repro.mpls.nhlfe` -- next-hop label forwarding entries;
* :mod:`repro.mpls.tables` -- the ILM and FTN tables of RFC 3031;
* :mod:`repro.mpls.forwarding` -- a software label-switching engine
  with an explicit operation-count cost model (the software baseline
  the paper's hardware is compared against);
* :mod:`repro.mpls.router` -- LER and LSR node behaviour.
"""

from repro.mpls.errors import (
    InvalidLabelError,
    LabelLookupMiss,
    MPLSError,
    NoRouteError,
    StackDepthExceeded,
    StackUnderflow,
    TTLExpired,
)
from repro.mpls.label import (
    BOTTOM_OF_STACK,
    IMPLICIT_NULL,
    IPV4_EXPLICIT_NULL,
    IPV6_EXPLICIT_NULL,
    LABEL_MAX,
    RESERVED_LABEL_MAX,
    ROUTER_ALERT,
    LabelEntry,
    LabelOp,
)
from repro.mpls.stack import LabelStack
from repro.mpls.fec import FEC, HostFEC, PrefixFEC, CoSFEC
from repro.mpls.nhlfe import NHLFE
from repro.mpls.tables import FTN, ILM
from repro.mpls.transaction import TableTransaction
from repro.mpls.forwarding import ForwardingEngine, ForwardingDecision, OpCounts
from repro.mpls.router import LSRNode, RouterRole

__all__ = [
    "MPLSError",
    "TTLExpired",
    "LabelLookupMiss",
    "NoRouteError",
    "StackUnderflow",
    "StackDepthExceeded",
    "InvalidLabelError",
    "LabelEntry",
    "LabelOp",
    "LabelStack",
    "LABEL_MAX",
    "RESERVED_LABEL_MAX",
    "IPV4_EXPLICIT_NULL",
    "ROUTER_ALERT",
    "IPV6_EXPLICIT_NULL",
    "IMPLICIT_NULL",
    "BOTTOM_OF_STACK",
    "FEC",
    "PrefixFEC",
    "HostFEC",
    "CoSFEC",
    "NHLFE",
    "ILM",
    "FTN",
    "TableTransaction",
    "ForwardingEngine",
    "ForwardingDecision",
    "OpCounts",
    "LSRNode",
    "RouterRole",
]
