"""Label stack semantics (paper Figure 4, RFC 3032 section 3).

A :class:`LabelStack` is an immutable sequence of
:class:`~repro.mpls.label.LabelEntry` with the top of the stack first.
The class enforces the S-bit invariant -- exactly the bottom entry has
``s == 1`` -- by *computing* the S bits rather than trusting callers, so
a stack built from any combination of pushes and pops is always
well-formed on the wire.

The paper notes that real MPLS networks rarely nest more than two or
three levels; the hardware information base supports exactly three.  The
software stack takes the depth limit as a parameter (default 3 to match
the hardware) but the limit is enforced at push time, not baked into the
representation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

from repro.mpls.errors import StackDepthExceeded, StackUnderflow
from repro.mpls.label import LabelEntry

#: The stack depth the paper's hardware supports (three IB levels).
DEFAULT_MAX_DEPTH = 3


class LabelStack:
    """An immutable MPLS label stack; index 0 is the top entry."""

    __slots__ = ("_entries", "max_depth")

    def __init__(
        self,
        entries: Iterable[LabelEntry] = (),
        max_depth: Optional[int] = DEFAULT_MAX_DEPTH,
    ) -> None:
        fixed = []
        entry_list = list(entries)
        for i, entry in enumerate(entry_list):
            is_bottom = i == len(entry_list) - 1
            fixed.append(entry.with_s(1 if is_bottom else 0))
        self._entries: Tuple[LabelEntry, ...] = tuple(fixed)
        self.max_depth = max_depth
        if max_depth is not None and len(self._entries) > max_depth:
            raise StackDepthExceeded(
                f"stack of depth {len(self._entries)} exceeds limit {max_depth}"
            )

    # -- inspection -------------------------------------------------------
    @property
    def entries(self) -> Tuple[LabelEntry, ...]:
        return self._entries

    @property
    def depth(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def top(self) -> LabelEntry:
        """The top (most recently pushed) entry."""
        if not self._entries:
            raise StackUnderflow("top of an empty label stack")
        return self._entries[0]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LabelEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> LabelEntry:
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LabelStack):
            return self._entries == other._entries
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._entries)

    def __repr__(self) -> str:
        inner = " ".join(str(e) for e in self._entries) or "empty"
        return f"<LabelStack {inner}>"

    # -- operations (all return new stacks) --------------------------------
    def push(self, entry: LabelEntry) -> "LabelStack":
        """Push ``entry`` on top; raises if the depth limit is hit."""
        if self.max_depth is not None and self.depth + 1 > self.max_depth:
            raise StackDepthExceeded(
                f"push would exceed max depth {self.max_depth}"
            )
        return LabelStack((entry,) + self._entries, self.max_depth)

    def pop(self) -> Tuple[LabelEntry, "LabelStack"]:
        """Remove the top entry; returns ``(entry, rest)``."""
        if not self._entries:
            raise StackUnderflow("pop of an empty label stack")
        return self._entries[0], LabelStack(self._entries[1:], self.max_depth)

    def swap(self, new_top: LabelEntry) -> "LabelStack":
        """Replace the top entry (a pop immediately followed by a push)."""
        if not self._entries:
            raise StackUnderflow("swap on an empty label stack")
        return LabelStack((new_top,) + self._entries[1:], self.max_depth)

    # -- wire format ------------------------------------------------------
    def encode_bytes(self) -> bytes:
        """Concatenated big-endian entries, top first (wire order)."""
        return b"".join(e.encode_bytes() for e in self._entries)

    @classmethod
    def decode_bytes(
        cls,
        data: bytes,
        max_depth: Optional[int] = DEFAULT_MAX_DEPTH,
    ) -> "LabelStack":
        """Parse a wire-format stack; consumes entries until the S bit.

        ``data`` must contain exactly the stack (S bit set on the final
        4-byte group); trailing bytes indicate a framing bug and raise.
        """
        entries = []
        offset = 0
        while offset < len(data):
            entry = LabelEntry.decode_bytes(data[offset : offset + 4])
            entries.append(entry)
            offset += 4
            if entry.is_bottom:
                break
        if offset != len(data):
            raise ValueError(
                f"{len(data) - offset} trailing bytes after bottom of stack"
            )
        if entries and not entries[-1].is_bottom:
            raise ValueError("stack data ended before a bottom-of-stack entry")
        return cls(entries, max_depth)

    @classmethod
    def wire_length(cls, data: bytes) -> int:
        """Number of bytes occupied by the stack at the head of ``data``."""
        offset = 0
        while offset + 4 <= len(data):
            if LabelEntry.decode_bytes(data[offset : offset + 4]).is_bottom:
                return offset + 4
            offset += 4
        raise ValueError("no bottom-of-stack entry found")
