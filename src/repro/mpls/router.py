"""LER and LSR node behaviour (paper section 2).

An :class:`LSRNode` is one MPLS router: a set of named interfaces, a
forwarding engine over its ILM/FTN tables, and per-node statistics.  Its
role -- Label Edge Router or core Label Switch Router -- is a
declaration used by the control plane and by validity checks (an LER may
originate and terminate LSPs; a pure LSR only transits), matching the
paper's ``rtrtype`` signal ("Logic low is interpreted as LER while logic
high is interpreted as LSR").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Union

from repro.mpls.forwarding import (
    Action,
    ForwardingDecision,
    ForwardingEngine,
)
from repro.mpls.tables import FTN, ILM
from repro.net.packet import IPv4Packet, MPLSPacket
from repro.obs.events import PacketDropped, PacketForwarded
from repro.obs.telemetry import get_telemetry


def stack_labels(packet: Union[IPv4Packet, MPLSPacket]) -> tuple:
    """The packet's label stack as a tuple of label values (empty for
    plain IP) -- the on-the-wire view telemetry and tracing record."""
    if isinstance(packet, MPLSPacket):
        return tuple(e.label for e in packet.stack)
    return ()


def packet_ttl(packet: Union[IPv4Packet, MPLSPacket]) -> int:
    """The TTL a node sees first: the top label's, else the IP header's."""
    if isinstance(packet, MPLSPacket):
        if not packet.stack.is_empty:
            return packet.stack.top.ttl
        return packet.inner.ttl
    return packet.ttl


class RouterRole(Enum):
    """The two router types of the paper's Figure 1."""

    LER = "ler"
    LSR = "lsr"

    @property
    def rtrtype_bit(self) -> int:
        """The hardware encoding: 0 for LER, 1 for LSR (Table 3)."""
        return 0 if self is RouterRole.LER else 1


@dataclass
class NodeStats:
    """Per-node data-plane counters."""

    received: int = 0
    forwarded_mpls: int = 0
    forwarded_ip: int = 0
    delivered_local: int = 0
    discarded: int = 0
    discard_reasons: Dict[str, int] = field(default_factory=dict)

    def record(self, decision: ForwardingDecision, count: int = 1) -> None:
        if decision.action is Action.FORWARD_MPLS:
            self.forwarded_mpls += count
        elif decision.action is Action.FORWARD_IP:
            self.forwarded_ip += count
        elif decision.action is Action.DELIVER_LOCAL:
            self.delivered_local += count
        else:
            self.discarded += count
            key = (decision.reason or "unspecified").split(":")[-1].strip()
            self.discard_reasons[key] = (
                self.discard_reasons.get(key, 0) + count
            )


class LSRNode:
    """One MPLS router (edge or core).

    Parameters
    ----------
    name:
        Unique node name within the network.
    role:
        :class:`RouterRole.LER` or :class:`RouterRole.LSR`.
    interfaces:
        Interface names; links attach to these.  May be extended later
        via :meth:`add_interface`.
    """

    def __init__(
        self,
        name: str,
        role: RouterRole = RouterRole.LSR,
        interfaces: Optional[List[str]] = None,
    ) -> None:
        self.name = name
        self.role = role
        self.interfaces: List[str] = list(interfaces or [])
        self.ilm = ILM()
        self.ftn = FTN()
        self.engine = ForwardingEngine(self.ilm, self.ftn, node_name=name)
        self.stats = NodeStats()
        #: neighbour name -> local interface used to reach it; the
        #: network layer fills this in when links are attached.
        self.neighbor_interfaces: Dict[str, str] = {}
        #: the batched fast path's per-node decision cache, armed by
        #: :meth:`enable_batching` (None = scalar processing)
        self.flow_cache = None
        #: trust-boundary guard for packets from *outside* the domain
        #: (RFC 4364 semantics): a callable ``(node_name, packet) ->
        #: bool`` where True rejects; the security monitor arms this on
        #: edge LERs.  None = unguarded (the legacy behaviour).
        self.external_guard = None

    # -- batched fast path --------------------------------------------------
    def enable_batching(self, cache_capacity: Optional[int] = None):
        """Arm the flow cache: subsequent packets replay memoized
        ILM/FTN decisions (see :mod:`repro.mpls.fastpath`)."""
        from repro.mpls.fastpath import DEFAULT_CAPACITY, FlowCache

        self.flow_cache = FlowCache(
            self.engine,
            capacity=(
                cache_capacity
                if cache_capacity is not None
                else DEFAULT_CAPACITY
            ),
        )
        return self.flow_cache

    def disable_batching(self) -> None:
        """Back to scalar processing (the differential oracle path)."""
        self.flow_cache = None

    def add_interface(self, interface: str) -> None:
        if interface in self.interfaces:
            raise ValueError(
                f"{self.name}: interface {interface!r} already exists"
            )
        self.interfaces.append(interface)

    @property
    def is_edge(self) -> bool:
        return self.role is RouterRole.LER

    def receive(
        self, packet: Union[IPv4Packet, MPLSPacket]
    ) -> ForwardingDecision:
        """Process one packet through the node's data plane.

        An unlabelled packet arriving at a core LSR is a configuration
        error in the paper's model (only LERs border layer-2 networks),
        so it is discarded rather than classified.
        """
        self.stats.received += 1
        if isinstance(packet, IPv4Packet) and not self.is_edge:
            decision = ForwardingDecision(
                Action.DISCARD,
                reason=f"{self.name}: unlabelled packet at a core LSR",
            )
        elif self.flow_cache is not None:
            decision = self.flow_cache.process(packet)
        else:
            decision = self.engine.process(packet)
        decision = self._fill_interface(decision)
        self.stats.record(decision)
        self.observe(packet, decision)
        return decision

    def receive_external(
        self, packet: Union[IPv4Packet, MPLSPacket]
    ) -> Optional[ForwardingDecision]:
        """Apply the trust-boundary guard to a packet arriving from
        outside the MPLS domain.

        Returns the DISCARD decision when the armed guard rejects the
        packet (a labelled stack not self-originated never crosses the
        boundary), or None when the packet is admitted -- the caller
        then runs it through :meth:`receive` like any other arrival.
        """
        if self.external_guard is None or not self.external_guard(
            self.name, packet
        ):
            return None
        decision = ForwardingDecision(
            Action.DISCARD,
            reason=(
                f"{self.name}: spoofed label stack rejected at trust "
                "boundary"
            ),
        )
        self.stats.received += 1
        self.stats.record(decision)
        self.observe(packet, decision)
        return decision

    def receive_aggregate(self, aggregate) -> ForwardingDecision:
        """Process a whole :class:`~repro.net.aggregate.FlowAggregate`
        in one step: one decision on the template shape, counters
        scaled by the aggregate's packet count.

        Requires batching (the flow cache supplies the per-packet
        operation deltas that scale to the train).
        """
        if self.flow_cache is None:
            raise RuntimeError(
                f"{self.name}: aggregates need batching enabled"
            )
        count = aggregate.count
        template = aggregate.template
        self.stats.received += count
        if isinstance(template, IPv4Packet) and not self.is_edge:
            decision = ForwardingDecision(
                Action.DISCARD,
                reason=f"{self.name}: unlabelled packet at a core LSR",
            )
        else:
            decision = self.flow_cache.process(template)
            if count > 1:
                # the cache already advanced counts for the template;
                # scale the same delta over the rest of the train
                self.flow_cache.scale_last(count - 1)
        decision = self._fill_interface(decision)
        self.stats.record(decision, count)
        self.observe_aggregate(aggregate, decision)
        return decision

    def observe_aggregate(self, aggregate, decision) -> None:
        """Bulk telemetry for one aggregate processing step: exact
        packet/byte totals on the metrics and flow accounting, no
        per-packet events (sampled packets are materialized by the
        source and observed on the scalar path instead)."""
        tel = get_telemetry()
        if not tel.enabled:
            return
        count = aggregate.count
        tel.packets.labels(self.name, decision.action.value).inc(count)
        if decision.action is Action.DISCARD:
            reason = decision.reason or "unspecified"
            tel.drops.labels(
                self.name, reason.split(":")[-1].strip()
            ).inc(count)
        elif tel.flows is not None:
            out = decision.packet
            tel.flows.record_packet_bulk(
                self.name,
                aggregate.flow_id,
                count,
                aggregate.length,
                stack_labels(out) if out is not None else (),
            )

    def observe(
        self,
        packet: Union[IPv4Packet, MPLSPacket],
        decision: ForwardingDecision,
    ) -> None:
        """Emit the per-packet telemetry for one processing step.

        No-op unless the process-wide telemetry is enabled; the event
        stream this produces is what :class:`repro.analysis.tracer.
        NetworkTracer` and ``repro trace`` consume.
        """
        tel = get_telemetry()
        if not tel.enabled:
            return
        tel.packets.labels(self.name, decision.action.value).inc()
        inner = packet.inner if isinstance(packet, MPLSPacket) else packet
        labels_in = stack_labels(packet)
        ttl_in = packet_ttl(packet)
        if decision.action is Action.DISCARD:
            reason = decision.reason or "unspecified"
            tel.drops.labels(
                self.name, reason.split(":")[-1].strip()
            ).inc()
            tel.events.emit(
                PacketDropped(
                    node=self.name,
                    uid=inner.uid,
                    flow_id=inner.flow_id,
                    reason=reason,
                    labels_in=labels_in,
                    ttl_in=ttl_in,
                )
            )
        else:
            out = decision.packet
            labels_out = stack_labels(out) if out is not None else ()
            # flow accounting rides the same guard: no extra `enabled`
            # read, one None test when no accountant is attached
            if tel.flows is not None:
                tel.flows.record_packet(
                    self.name, inner.flow_id, packet.length, labels_out
                )
            tel.events.emit(
                PacketForwarded(
                    node=self.name,
                    uid=inner.uid,
                    flow_id=inner.flow_id,
                    action=decision.action.value,
                    labels_in=labels_in,
                    labels_out=labels_out,
                    ttl_in=ttl_in,
                    next_hop=decision.next_hop,
                )
            )

    def _fill_interface(
        self, decision: ForwardingDecision
    ) -> ForwardingDecision:
        """Resolve a next-hop name into a local interface when the NHLFE
        did not specify one explicitly."""
        if (
            decision.forwarded
            and decision.out_interface is None
            and decision.next_hop is not None
        ):
            interface = self.neighbor_interfaces.get(decision.next_hop)
            if interface is not None:
                decision = ForwardingDecision(
                    decision.action,
                    packet=decision.packet,
                    next_hop=decision.next_hop,
                    out_interface=interface,
                    reason=decision.reason,
                )
        return decision

    def __repr__(self) -> str:
        return f"<LSRNode {self.name} {self.role.value}>"
