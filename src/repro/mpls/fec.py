"""Forwarding Equivalence Classes (RFC 3031 section 2.1).

A FEC groups packets that are forwarded the same way -- over the same
LSP with the same treatment.  The ingress LER classifies each unlabelled
packet into a FEC and maps the FEC to a label via the FTN table.

Three classifiers are provided:

* :class:`PrefixFEC` -- destination address falls in an IPv4 prefix
  (the common IGP-driven case),
* :class:`HostFEC` -- destination equals a specific host address,
* :class:`CoSFEC` -- a wrapper adding a DSCP requirement to another
  FEC, which is how the paper's QoS motivation (classifying VoIP onto a
  priority LSP) is expressed.

FECs are ordered by :attr:`FEC.specificity`; the FTN resolves overlaps
longest-match-first, as an IP RIB would.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.net.addressing import IPv4Address, IPv4Prefix
from repro.net.packet import IPv4Packet


class FEC:
    """Base class: a predicate over IPv4 packets with a specificity."""

    #: Higher wins when several FECs match one packet.
    specificity: int = 0

    def matches(self, packet: IPv4Packet) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


class PrefixFEC(FEC):
    """Packets whose destination lies in ``prefix``."""

    __slots__ = ("prefix", "specificity")

    def __init__(self, prefix: Union[str, IPv4Prefix]) -> None:
        self.prefix = (
            prefix if isinstance(prefix, IPv4Prefix) else IPv4Prefix(prefix)
        )
        self.specificity = self.prefix.length

    def matches(self, packet: IPv4Packet) -> bool:
        return self.prefix.contains(packet.dst)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrefixFEC) and self.prefix == other.prefix

    def __hash__(self) -> int:
        return hash(("prefix", self.prefix))

    def __repr__(self) -> str:
        return f"PrefixFEC('{self.prefix}')"


class HostFEC(FEC):
    """Packets destined to exactly ``host`` (a /32, maximally specific)."""

    __slots__ = ("host", "specificity")

    def __init__(self, host: Union[str, int, IPv4Address]) -> None:
        self.host = IPv4Address(host)
        self.specificity = 32

    def matches(self, packet: IPv4Packet) -> bool:
        return packet.dst == self.host

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HostFEC) and self.host == other.host

    def __hash__(self) -> int:
        return hash(("host", self.host))

    def __repr__(self) -> str:
        return f"HostFEC('{self.host}')"


class CoSFEC(FEC):
    """An inner FEC further restricted to a DSCP range.

    Used to steer marked traffic (e.g. EF-marked VoIP) onto a dedicated
    LSP while best-effort traffic to the same destinations takes
    another.  A CoS-qualified FEC is always more specific than its
    unqualified inner FEC.
    """

    __slots__ = ("inner", "dscp_min", "dscp_max", "specificity")

    def __init__(self, inner: FEC, dscp_min: int, dscp_max: Optional[int] = None) -> None:
        if dscp_max is None:
            dscp_max = dscp_min
        if not 0 <= dscp_min <= dscp_max <= 63:
            raise ValueError(
                f"bad DSCP range {dscp_min}..{dscp_max} (must be within 0..63)"
            )
        self.inner = inner
        self.dscp_min = dscp_min
        self.dscp_max = dscp_max
        self.specificity = inner.specificity + 64

    def matches(self, packet: IPv4Packet) -> bool:
        return (
            self.dscp_min <= packet.dscp <= self.dscp_max
            and self.inner.matches(packet)
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CoSFEC)
            and self.inner == other.inner
            and (self.dscp_min, self.dscp_max)
            == (other.dscp_min, other.dscp_max)
        )

    def __hash__(self) -> int:
        return hash(("cos", self.inner, self.dscp_min, self.dscp_max))

    def __repr__(self) -> str:
        return f"CoSFEC({self.inner!r}, dscp={self.dscp_min}..{self.dscp_max})"
