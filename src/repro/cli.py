"""Command-line interface: regenerate the paper's results standalone.

``python -m repro <command>``:

* ``table6``      -- measure Table 6 on the cycle-accurate RTL
* ``worst-case``  -- the Section 4 composite (analytic + RTL)
* ``figures``     -- replay the Figure 14/15/16 simulations
* ``hw-vs-sw``    -- the hardware/software partition comparison
* ``throughput``  -- label-switching throughput vs table size
* ``device``      -- the FPGA device model and memory budget
* ``all``         -- everything above in sequence
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.analysis.cycles import measure_table6
from repro.analysis.report import render_series, render_table
from repro.analysis.throughput import estimate_throughput
from repro.core.device import STRATIX_EP1S40
from repro.core.hybrid import compare_partitions
from repro.core.timing import worst_case_scenario
from repro.hw.driver import ModifierDriver
from repro.mpls.label import LabelEntry, LabelOp


def cmd_table6() -> None:
    rows = measure_table6(search_sizes=(1, 10, 100), ib_depth=1024)
    print(render_table(
        ["operation", "formula", "expected", "measured (RTL)", "match"],
        [[r.operation, r.formula, r.expected, r.measured,
          "ok" if r.matches else "MISMATCH"] for r in rows],
        title="Table 6 -- processing times (worst-case clock cycles)",
    ))


def cmd_worst_case() -> None:
    wc = worst_case_scenario()
    rows = list(wc.as_rows())
    rows.append(("time at 50 MHz", f"{wc.seconds * 1e3:.4f} ms"))
    print(render_table(["component", "cycles"], rows,
                       title="Section 4 worst case (paper: 6167 cycles, "
                       "~0.1233 ms)"))
    print("\nre-measuring on the cycle-accurate RTL (takes ~1 s)...")
    drv = ModifierDriver(ib_depth=1024)
    total = drv.reset()
    for i, label in enumerate((100, 200, 300)):
        total += drv.user_push(
            LabelEntry(label=label, ttl=9, s=1 if i == 0 else 0)
        )
    for i in range(1023):
        total += drv.write_pair(3, 1000 + i, 500, LabelOp.SWAP)
    total += drv.write_pair(3, 300, 999, LabelOp.SWAP)
    total += drv.update().cycles
    print(f"RTL total: {total} cycles "
          f"({STRATIX_EP1S40.time_for_cycles(total) * 1e3:.4f} ms) -- "
          f"{'matches the paper' if total == 6167 else 'MISMATCH'}")


def cmd_figures() -> None:
    ops = [LabelOp.SWAP, LabelOp.POP, LabelOp.PUSH]
    drv = ModifierDriver(ib_depth=1024)

    drv.reset()
    for i in range(10):
        drv.write_pair(1, 600 + i, 500 + i, ops[i % 3])
    hit = drv.search(1, 604)
    print(f"Figure 14: lookup(packetid=604) -> label_out={hit.label} "
          f"operation_out={int(hit.op)} cycles={hit.cycles} "
          f"packetdiscard={int(hit.discarded)}")

    drv.reset()
    for i in range(10):
        drv.write_pair(2, i + 1, 500 + i, ops[i % 3])
    hit2 = drv.search(2, 5)
    print(f"Figure 15: lookup(label=5) at level 2 -> label_out={hit2.label} "
          f"cycles={hit2.cycles} packetdiscard={int(hit2.discarded)}")

    miss = drv.search(2, 27)
    print(f"Figure 16: lookup(label=27, absent) -> found={miss.found} "
          f"cycles={miss.cycles} (3n+5, n=10) "
          f"packetdiscard={int(miss.discarded)}")


def cmd_hw_vs_sw() -> None:
    cmp = compare_partitions()
    rows = [
        [p.n_entries, p.hw_cycles, round(p.hw_seconds * 1e6, 2),
         round(p.sw_seconds * 1e6, 2),
         f"{p.speedup_vs_linear_sw:.1f}x"]
        for p in cmp.points
    ]
    print(render_table(
        ["IB entries", "hw cycles", "hw us", "sw-linear us", "hw speedup"],
        rows,
        title="Hardware (50 MHz) vs linear software (200 MHz) per "
        "worst-case swap",
    ))
    print(f"hashed-software crossover at n = {cmp.crossover_entries()}")


def cmd_throughput() -> None:
    rows = []
    for n in (1, 16, 64, 256, 1024):
        est = estimate_throughput(n, packet_size_bytes=500)
        rows.append([n, est.cycles_per_packet,
                     int(est.packets_per_second), round(est.mbps, 1)])
    print(render_series(
        "IB entries", ["cycles/pkt", "pps", "Mbps (500B)"], rows,
        title="Worst-case label-switching throughput at 50 MHz",
    ))


def cmd_device() -> None:
    dev = STRATIX_EP1S40
    print(render_table(
        ["property", "value"],
        [
            ["device", dev.name],
            ["clock", f"{dev.clock_hz / 1e6:.0f} MHz"],
            ["cycle time", f"{dev.cycle_time_s * 1e9:.0f} ns"],
            ["block RAM", f"{dev.memory_bits} bits"],
            ["info base need", f"{dev.info_base_bits()} bits"],
            ["memory utilization", f"{dev.memory_utilization():.1%}"],
            ["fits", "yes" if dev.fits_info_base() else "NO"],
        ],
        title="FPGA device model",
    ))


COMMANDS: Dict[str, Callable[[], None]] = {
    "table6": cmd_table6,
    "worst-case": cmd_worst_case,
    "figures": cmd_figures,
    "hw-vs-sw": cmd_hw_vs_sw,
    "throughput": cmd_throughput,
    "device": cmd_device,
}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's results.",
    )
    parser.add_argument(
        "command",
        choices=[*COMMANDS, "all"],
        help="which result to regenerate",
    )
    args = parser.parse_args(argv)
    if args.command == "all":
        for name, fn in COMMANDS.items():
            print(f"\n===== {name} =====")
            fn()
    else:
        COMMANDS[args.command]()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
