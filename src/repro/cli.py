"""Command-line interface: regenerate the paper's results standalone.

``python -m repro <command>``:

* ``table6``      -- measure Table 6 on the cycle-accurate RTL
* ``worst-case``  -- the Section 4 composite (analytic + RTL)
* ``figures``     -- replay the Figure 14/15/16 simulations
* ``hw-vs-sw``    -- the hardware/software partition comparison
* ``throughput``  -- label-switching throughput vs table size
* ``device``      -- the FPGA device model and memory budget
* ``stats``       -- run a telemetry-instrumented scenario and print
  the metrics snapshot (Prometheus text + JSON) plus the cycle-level
  profile of a Table 6 measurement
* ``trace``       -- emit the structured event stream of the
  quickstart scenario as JSON Lines
* ``flows``       -- run a scenario with flow accounting armed: top
  talkers, the ingress->egress traffic matrix, alert history, and
  byte-stable ``--export``/``--matrix``/``--prom`` artifacts
* ``topo``        -- run a scenario with the topology observer armed
  and query the link-state database: ``show``, ``at <t>``,
  ``diff <t1> <t2>``, ``health``, with JSON/DOT exports
* ``bench-report``-- merge the BENCH_*.json benchmark artifacts into
  one summary table
* ``all``         -- every regeneration command above in sequence

Every command returns a process exit code: 0 on success, 1 when a
measured value disagrees with the paper (a MISMATCH) or an invariant
fails.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, TextIO, Tuple

from repro.analysis.cycles import measure_table6
from repro.analysis.report import render_series, render_table
from repro.analysis.throughput import estimate_throughput
from repro.core.device import STRATIX_EP1S40
from repro.core.hybrid import compare_partitions
from repro.core.timing import worst_case_scenario
from repro.hw.driver import ModifierDriver
from repro.mpls.label import LabelEntry, LabelOp


def cmd_table6() -> int:
    rows = measure_table6(search_sizes=(1, 10, 100), ib_depth=1024)
    print(render_table(
        ["operation", "formula", "expected", "measured (RTL)", "match"],
        [[r.operation, r.formula, r.expected, r.measured,
          "ok" if r.matches else "MISMATCH"] for r in rows],
        title="Table 6 -- processing times (worst-case clock cycles)",
    ))
    return 0 if all(r.matches for r in rows) else 1


def cmd_worst_case() -> int:
    wc = worst_case_scenario()
    rows = list(wc.as_rows())
    rows.append(("time at 50 MHz", f"{wc.seconds * 1e3:.4f} ms"))
    print(render_table(["component", "cycles"], rows,
                       title="Section 4 worst case (paper: 6167 cycles, "
                       "~0.1233 ms)"))
    print("\nre-measuring on the cycle-accurate RTL (takes ~1 s)...")
    drv = ModifierDriver(ib_depth=1024)
    total = drv.reset()
    for i, label in enumerate((100, 200, 300)):
        total += drv.user_push(
            LabelEntry(label=label, ttl=9, s=1 if i == 0 else 0)
        )
    for i in range(1023):
        total += drv.write_pair(3, 1000 + i, 500, LabelOp.SWAP)
    total += drv.write_pair(3, 300, 999, LabelOp.SWAP)
    total += drv.update().cycles
    print(f"RTL total: {total} cycles "
          f"({STRATIX_EP1S40.time_for_cycles(total) * 1e3:.4f} ms) -- "
          f"{'matches the paper' if total == 6167 else 'MISMATCH'}")
    return 0 if total == 6167 else 1


def cmd_figures() -> int:
    ops = [LabelOp.SWAP, LabelOp.POP, LabelOp.PUSH]
    drv = ModifierDriver(ib_depth=1024)

    drv.reset()
    for i in range(10):
        drv.write_pair(1, 600 + i, 500 + i, ops[i % 3])
    hit = drv.search(1, 604)
    print(f"Figure 14: lookup(packetid=604) -> label_out={hit.label} "
          f"operation_out={int(hit.op)} cycles={hit.cycles} "
          f"packetdiscard={int(hit.discarded)}")

    drv.reset()
    for i in range(10):
        drv.write_pair(2, i + 1, 500 + i, ops[i % 3])
    hit2 = drv.search(2, 5)
    print(f"Figure 15: lookup(label=5) at level 2 -> label_out={hit2.label} "
          f"cycles={hit2.cycles} packetdiscard={int(hit2.discarded)}")

    miss = drv.search(2, 27)
    print(f"Figure 16: lookup(label=27, absent) -> found={miss.found} "
          f"cycles={miss.cycles} (3n+5, n=10) "
          f"packetdiscard={int(miss.discarded)}")
    return 0


def cmd_hw_vs_sw() -> int:
    cmp = compare_partitions()
    rows = [
        [p.n_entries, p.hw_cycles, round(p.hw_seconds * 1e6, 2),
         round(p.sw_seconds * 1e6, 2),
         f"{p.speedup_vs_linear_sw:.1f}x"]
        for p in cmp.points
    ]
    print(render_table(
        ["IB entries", "hw cycles", "hw us", "sw-linear us", "hw speedup"],
        rows,
        title="Hardware (50 MHz) vs linear software (200 MHz) per "
        "worst-case swap",
    ))
    print(f"hashed-software crossover at n = {cmp.crossover_entries()}")
    return 0


def cmd_throughput() -> int:
    rows = []
    for n in (1, 16, 64, 256, 1024):
        est = estimate_throughput(n, packet_size_bytes=500)
        rows.append([n, est.cycles_per_packet,
                     int(est.packets_per_second), round(est.mbps, 1)])
    print(render_series(
        "IB entries", ["cycles/pkt", "pps", "Mbps (500B)"], rows,
        title="Worst-case label-switching throughput at 50 MHz",
    ))
    return 0


def cmd_device() -> int:
    dev = STRATIX_EP1S40
    print(render_table(
        ["property", "value"],
        [
            ["device", dev.name],
            ["clock", f"{dev.clock_hz / 1e6:.0f} MHz"],
            ["cycle time", f"{dev.cycle_time_s * 1e9:.0f} ns"],
            ["block RAM", f"{dev.memory_bits} bits"],
            ["info base need", f"{dev.info_base_bits()} bits"],
            ["memory utilization", f"{dev.memory_utilization():.1%}"],
            ["fits", "yes" if dev.fits_info_base() else "NO"],
        ],
        title="FPGA device model",
    ))
    return 0


# -- export plumbing ---------------------------------------------------------
# every command that writes a file reports unwritable paths the same
# way: `error: cannot write <path>: <reason>` on stderr, exit code 1.

def _open_output(path: str) -> Optional[TextIO]:
    """Open an export file for writing; on failure print the standard
    error message and return None (callers turn that into exit 1)."""
    try:
        return open(path, "w", encoding="utf-8")
    except OSError as exc:
        print(f"error: cannot write {path}: {exc}", file=sys.stderr)
        return None


def _write_output(path: str, write: Callable[[TextIO], None]) -> bool:
    """Write an export file through ``write(handle)``; on failure print
    the standard error message and return False."""
    stream = _open_output(path)
    if stream is None:
        return False
    try:
        write(stream)
    except OSError as exc:
        print(f"error: cannot write {path}: {exc}", file=sys.stderr)
        return False
    finally:
        stream.close()
    return True


# -- telemetry commands ------------------------------------------------------
# `stats` and `trace` are observability views, not paper-result
# regenerators, so they live outside COMMANDS (and outside `all`).

def _quickstart_run() -> Tuple[object, object]:
    """The quickstart scenario: Figure 1 topology, LDP-bound labels,
    one CBR flow across the domain.  The caller is expected to have
    telemetry enabled; returns (network, source)."""
    from repro.control.ldp import LDPProcess
    from repro.mpls.fec import PrefixFEC
    from repro.mpls.router import RouterRole
    from repro.net.network import MPLSNetwork
    from repro.net.topology import paper_figure1
    from repro.net.traffic import CBRSource

    topology = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    network = MPLSNetwork(
        topology,
        roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER},
    )
    network.attach_host("ler-b", "10.2.0.0/16")
    LDPProcess(topology, network.nodes).establish_fec(
        PrefixFEC("10.2.0.0/16"), egress="ler-b"
    )
    source = CBRSource(
        network.scheduler,
        network.source_sink("ler-a"),
        src="10.1.0.5",
        dst="10.2.0.9",
        rate_bps=1e6,
        packet_size=500,
        stop=0.5,
    )
    source.begin()
    network.run(until=1.0)
    return network, source


def cmd_stats() -> int:
    """Run the quickstart scenario and a profiled Table 6 measurement
    under one telemetry session; print the full snapshot."""
    from repro.obs import (
        ConservationError,
        CycleProfiler,
        ListSink,
        telemetry_session,
        to_json,
        to_prometheus,
    )

    rc = 0
    with telemetry_session() as tel:
        sink = tel.events.add_sink(ListSink())
        network, source = _quickstart_run()
        print(f"scenario: sent {source.sent}, "
              f"delivered {network.delivered_count()}, "
              f"dropped {network.drop_count()}")

        # -- cycle-level profile of the Table 6 measurement ----------------
        drv = ModifierDriver(ib_depth=1024)
        profiler = CycleProfiler(drv.sim, telemetry=tel)
        drv.attach_profiler(profiler)
        rows = measure_table6(search_sizes=(1, 10, 100), driver=drv)
        print()
        print(render_table(
            ["operation", "formula", "expected", "measured (RTL)", "match"],
            [[r.operation, r.formula, r.expected, r.measured,
              "ok" if r.matches else "MISMATCH"] for r in rows],
            title="Table 6 -- measured under the cycle profiler",
        ))
        if not all(r.matches for r in rows):
            rc = 1
        print()
        print("cycle profile (per scoped operation / FSM state):")
        print(profiler.render())
        try:
            profiler.check_conservation()
        except ConservationError as exc:
            print(f"cycle conservation FAILED: {exc}")
            rc = 1
        else:
            print("cycle conservation: ok (per-state and per-operation "
                  "totals sum to the observed cycles)")
        if profiler.cycles == drv.total_cycles:
            print(f"profiler total == simulator total: "
                  f"{profiler.cycles} cycles")
        else:
            print(f"profiler total {profiler.cycles} != simulator total "
                  f"{drv.total_cycles}: MISMATCH")
            rc = 1

        # -- event log roll-up --------------------------------------------
        kinds: Dict[str, int] = {}
        for event in sink.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        print()
        print(render_table(
            ["event kind", "count"],
            [[k, kinds[k]] for k in sorted(kinds)],
            title=f"Event log ({tel.events.emitted} events)",
        ))

        # -- the snapshot itself ------------------------------------------
        print()
        print("# ---- Prometheus exposition ----")
        print(to_prometheus(tel.registry))
        print("# ---- JSON snapshot ----")
        print(to_json(tel.registry))
    return rc


def cmd_trace(
    output: Optional[str] = None,
    flows: Optional[List[int]] = None,
    nodes: Optional[List[str]] = None,
) -> int:
    """Emit the quickstart scenario's event stream as JSON Lines --
    to stdout, or to ``output`` when given.

    ``flows`` / ``nodes`` restrict the stream to matching events (a
    :class:`~repro.obs.events.FilterSink` in front of the JSONL sink).
    Events stream to the sink as they happen; nothing is buffered for
    the run's whole duration.
    """
    from repro.obs import FilterSink, JSONLSink, telemetry_session

    with telemetry_session() as tel:
        if output:
            maybe_stream = _open_output(output)
            if maybe_stream is None:
                return 1
            stream: TextIO = maybe_stream
        else:
            stream = sys.stdout
        jsonl = JSONLSink(stream)
        if flows or nodes:
            sink = tel.events.add_sink(
                FilterSink(jsonl, flows=flows, nodes=nodes)
            )
        else:
            sink = tel.events.add_sink(jsonl)
        try:
            network, source = _quickstart_run()
        finally:
            tel.events.remove_sink(sink)
            if output:
                stream.close()
        filtered = (
            f" ({sink.filtered} filtered out)"
            if isinstance(sink, FilterSink)
            else ""
        )
        print(
            f"traced {tel.events.emitted} events{filtered} "
            f"({source.sent} packets sent, "
            f"{network.delivered_count()} delivered)"
            + (f" -> {output}" if output else ""),
            file=sys.stderr,
        )
    return 0


def cmd_spans(
    scenario_path: Optional[str],
    seed: int = 0,
    sample_rate: float = 1.0,
    export: Optional[str] = None,
    flows: Optional[List[int]] = None,
    fecs: Optional[List[str]] = None,
    slowest: int = 5,
) -> int:
    """Trace a run at span granularity and summarize (or export) it.

    With a scenario file the chaos harness runs it under a
    :class:`~repro.obs.spans.SpanRecorder`; without one the quickstart
    scenario is traced instead.  ``--export`` writes the (possibly
    ``--flow``/``--fec``-filtered) traces as Chrome trace-event JSON,
    loadable in Perfetto / ``chrome://tracing``.
    """
    from repro.obs import telemetry_session
    from repro.obs.spans import (
        SpanRecorder,
        export_chrome_trace,
        render_summary,
    )

    if scenario_path is not None:
        from repro.faults import Scenario, ScenarioError, run_scenario

        try:
            scenario = Scenario.load(scenario_path)
        except OSError as exc:
            print(
                f"error: cannot read {scenario_path}: {exc}",
                file=sys.stderr,
            )
            return 1
        except ScenarioError as exc:
            print(f"error: bad scenario: {exc}", file=sys.stderr)
            return 1
        try:
            with telemetry_session():
                report = run_scenario(
                    scenario, seed=seed, sample_rate=sample_rate
                )
        except ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        recorder = report.recorder
        label = scenario.name
    else:
        with telemetry_session():
            recorder = SpanRecorder(sample_rate=sample_rate)
            _quickstart_run()
            recorder.finalize()
            recorder.detach()
        label = "quickstart"

    print(render_summary(recorder, slowest=slowest))
    traces = recorder.traces()
    flowset = set(flows) if flows else None
    fecset = set(fecs) if fecs else None
    if flowset is not None or fecset is not None:
        traces = [
            t
            for t in traces
            if (flowset is None or t.flow_id in flowset)
            and (fecset is None or t.fec in fecset)
        ]
        print()
        print(f"filtered traces ({len(traces)}):")
        for t in traces:
            status = (
                "delivered"
                if t.delivered
                else ("dropped" if t.dropped else "open")
            )
            lat = (
                f"{t.latency * 1e3:.3f}ms"
                if t.latency is not None
                else "n/a"
            )
            print(
                f"  {t.trace_id:<24} fec={t.fec:<18} {status:<9} "
                f"latency={lat} path={'>'.join(t.path)}"
            )
    if export:
        if not _write_output(
            export, lambda handle: export_chrome_trace(traces, handle)
        ):
            return 1
        print(
            f"spans: {label!r}: exported {len(traces)} traces -> {export}",
            file=sys.stderr,
        )
    return 0


def _render_fault_kinds() -> str:
    """Enumerate every fault kind with its target arity and accepted
    params, straight from the validation table -- what ``from_dict``
    accepts is exactly what this prints."""
    from repro.faults.scenario import (
        CONTROLLER_KINDS,
        FAULT_PARAMS,
        LINK_KINDS,
        SECURITY_KINDS,
    )

    lines = []
    for kind, params in FAULT_PARAMS.items():
        if kind.value == "controller-crash":
            arity = 'the literal "controller"'
        elif kind in LINK_KINDS:
            arity = "link (two nodes)"
        else:
            arity = "node"
        if kind in SECURITY_KINDS:
            tag = "  [adversarial: needs a 'security' key]"
        elif kind in CONTROLLER_KINDS:
            tag = "  [controller: needs a 'controller' key]"
        else:
            tag = ""
        lines.append(f"{kind.value} -- target: {arity}{tag}")
        if params:
            for name in sorted(params):
                lines.append(f"    {name}: {params[name]}")
        else:
            lines.append("    (no params)")
    return "\n".join(lines)


def cmd_chaos(
    scenario_path: Optional[str],
    seed: int = 0,
    output: Optional[str] = None,
    audit: Optional[float] = None,
    overload: Optional[str] = None,
    batching: Optional[str] = None,
    mitigation: Optional[str] = None,
    controller: Optional[str] = None,
    list_faults: bool = False,
) -> int:
    """Run a fault-injection scenario file and print its report.

    Stdout carries exactly the JSON report (the CI smoke step compares
    two runs byte-for-byte); diagnostics go to stderr.
    ``--list-faults`` instead enumerates the fault taxonomy (kinds,
    target arity, accepted params) and exits.
    """
    from repro.faults import Scenario, ScenarioError, run_scenario
    from repro.obs import telemetry_session

    if list_faults:
        print(_render_fault_kinds())
        return 0
    if scenario_path is None:
        print("error: chaos needs a scenario file "
              "(e.g. examples/chaos_smoke.json)", file=sys.stderr)
        return 1
    try:
        scenario = Scenario.load(scenario_path)
    except OSError as exc:
        print(f"error: cannot read {scenario_path}: {exc}", file=sys.stderr)
        return 1
    except ScenarioError as exc:
        print(f"error: bad scenario: {exc}", file=sys.stderr)
        return 1
    if audit is not None:
        # the flag arms (or re-periods) the consistency auditor even
        # when the scenario file doesn't ask for it
        scenario.audit = {**(scenario.audit or {}), "period": audit}
    if overload is not None:
        # same idea: force overload protection on (or run the
        # unprotected baseline) regardless of the scenario's own key
        scenario.overload = {
            **(scenario.overload or {}),
            "enabled": overload == "on",
        }
    if mitigation is not None:
        # run the same seeded attacks with every guard up, or stand
        # them all down for the blast-radius baseline
        scenario.security = {
            **(scenario.security or {}),
            "enabled": mitigation == "on",
        }
    if controller is not None:
        # arm the centralized PCE (or run it dark for the distributed
        # baseline) regardless of the scenario's own key
        scenario.controller = {
            **(scenario.controller or {}),
            "enabled": controller == "on",
        }
    try:
        with telemetry_session():
            report = run_scenario(
                scenario, seed=seed, batching=(batching == "on")
            )
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    text = report.to_json()
    if output:
        if not _write_output(output, lambda handle: handle.write(text)):
            return 1
    else:
        sys.stdout.write(text)
    traffic = report["traffic"]
    availability = traffic["availability"]
    print(
        f"chaos: {scenario.name!r} seed={seed}: "
        f"{len(report['faults'])} faults, "
        f"availability {availability if availability is not None else 'n/a'}"
        + (f" -> {output}" if output else ""),
        file=sys.stderr,
    )
    return 0


def cmd_flows(
    scenario_path: Optional[str],
    seed: int = 0,
    top: int = 10,
    export: Optional[str] = None,
    matrix: Optional[str] = None,
    prom: Optional[str] = None,
) -> int:
    """Run a scenario with flow accounting armed and render the
    top-talkers view, the traffic matrix, and the alert history.

    Flow accounting is forced on even when the scenario file has no
    ``flows`` key (defaults apply); alert rules run only if the file
    declares them.  ``--export`` writes the flow records, matrix
    snapshots, and alert transitions as JSON Lines; ``--matrix`` the
    snapshots as one JSON document; ``--prom`` the final Prometheus
    exposition.  All three exports are byte-stable for a seeded
    scenario (the CI flows-smoke step compares two runs with ``cmp``).
    """
    from repro.faults import Scenario, ScenarioError, run_scenario
    from repro.obs import telemetry_session, to_prometheus
    from repro.obs.alerts import render_alert_history
    from repro.obs.flows import (
        flows_to_jsonl,
        matrices_to_json,
        render_flow_summary,
    )

    if scenario_path is None:
        print("error: flows needs a scenario file "
              "(e.g. examples/chaos_flow_alerts.json)", file=sys.stderr)
        return 1
    try:
        scenario = Scenario.load(scenario_path)
    except OSError as exc:
        print(f"error: cannot read {scenario_path}: {exc}", file=sys.stderr)
        return 1
    except ScenarioError as exc:
        print(f"error: bad scenario: {exc}", file=sys.stderr)
        return 1
    if scenario.flows is None:
        scenario.flows = {}
    try:
        with telemetry_session() as tel:
            report = run_scenario(scenario, seed=seed)
            exposition = to_prometheus(tel.registry)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    accountant = report.flows
    print(render_flow_summary(accountant, report.collector, top=top))
    if report.alert_engine is not None:
        print()
        print(render_alert_history(report.alert_engine))
    if export:
        records = accountant.all_records()
        matrices = (
            report.collector.matrices if report.collector is not None else ()
        )
        history = (
            report.alert_engine.history
            if report.alert_engine is not None
            else ()
        )
        if not _write_output(
            export,
            lambda handle: flows_to_jsonl(
                records, handle, matrices, history
            ),
        ):
            return 1
        print(
            f"flows: {scenario.name!r} seed={seed}: exported "
            f"{len(records)} records -> {export}",
            file=sys.stderr,
        )
    if matrix:
        if not _write_output(
            matrix,
            lambda handle: handle.write(
                matrices_to_json(
                    report.collector.matrices
                    if report.collector is not None
                    else []
                )
            ),
        ):
            return 1
        print(f"flows: matrix snapshots -> {matrix}", file=sys.stderr)
    if prom:
        if not _write_output(
            prom, lambda handle: handle.write(exposition)
        ):
            return 1
        print(f"flows: Prometheus exposition -> {prom}", file=sys.stderr)
    return 0


def cmd_bench_report(results_dir: Optional[str] = None) -> int:
    """Merge the ``BENCH_<name>.json`` artifacts into one summary table.

    Reads every machine-readable benchmark record under
    ``benchmarks/results/`` (or ``results_dir``) and renders them
    sorted by name, so a whole benchmark run can be scanned -- or
    diffed against a previous one -- at a glance.
    """
    import glob
    import json
    import os

    directory = results_dir or os.path.join("benchmarks", "results")
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    if not paths:
        print(
            f"error: no BENCH_*.json files under {directory} "
            "(run the benchmarks first: pytest benchmarks/)",
            file=sys.stderr,
        )
        return 1
    rows = []
    bad = schemaless = 0
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            bad += 1
            continue
        if not isinstance(record, dict):
            print(
                f"warning: {path} is not a benchmark record "
                f"(top-level {type(record).__name__}, expected an "
                "object); skipping",
                file=sys.stderr,
            )
            schemaless += 1
            continue
        missing = [
            key for key in ("name", "metric", "value")
            if key not in record
        ]
        if missing:
            print(
                f"warning: {path} is missing schema keys "
                f"{', '.join(missing)}; rendering placeholders",
                file=sys.stderr,
            )
            schemaless += 1
        value = record.get("value")
        if isinstance(value, float):
            value = f"{value:g}"
        seed = record.get("seed")
        rows.append([
            record.get("name", os.path.basename(path)),
            record.get("metric", "?"),
            value,
            record.get("units", ""),
            seed if seed is not None else "-",
        ])
    title = f"Benchmark summary ({len(rows)} records from {directory}"
    if bad or schemaless:
        title += f"; {bad} unreadable, {schemaless} schema-less"
    title += ")"
    print(render_table(
        ["benchmark", "metric", "value", "units", "seed"],
        rows,
        title=title,
    ))
    if bad or schemaless:
        print(
            f"bench-report: {bad} unreadable and {schemaless} "
            "schema-less artifacts (see warnings above)",
            file=sys.stderr,
        )
    return 1 if bad else 0


def _render_topo_view(view) -> str:
    """A human summary of one TopologyView (deterministic text)."""
    d = view.data
    health = view.health()
    lines = [
        f"topology @ t={view.time:g}  "
        f"(overall health {health['overall']:g})",
        "",
    ]
    lines.append("nodes:")
    for name in sorted(d["nodes"]):
        lines.append(f"  {name:10s} {d['nodes'][name]}")
    lines.append("links:")
    for key in sorted(d["links"]):
        a, b = key.split("|")
        busy = max(
            d["utilization"].get(f"{a}>{b}", 0.0),
            d["utilization"].get(f"{b}>{a}", 0.0),
        )
        util = f"  util {busy * 100:.0f}%" if busy else ""
        lines.append(f"  {a} -- {b}: {d['links'][key]}{util}")
    ups = sum(1 for s in d["adjacencies"].values() if s == "up")
    if d["adjacencies"]:
        lines.append(
            f"ldp adjacencies: {ups}/{len(d['adjacencies'])} up"
        )
    if d["fecs"]:
        lines.append("fecs:")
        for fec_id in sorted(d["fecs"]):
            lines.append(
                f"  {fec_id}: bindings at "
                f"{len(d['fecs'][fec_id])} routers"
            )
    if d["lsps"]:
        lines.append("lsps:")
        for name in sorted(d["lsps"]):
            entry = d["lsps"][name]
            active = d["frr"].get(name)
            frr = f"  (frr: {active})" if active else ""
            lines.append(
                f"  {name}: {entry['state']}  route "
                f"{entry['route'] or '-'}{frr}"
            )
    if d["faults"]:
        lines.append("active faults:")
        for key in sorted(d["faults"]):
            lines.append(f"  {key}  since t={d['faults'][key]:g}")
    if d["attacks"]:
        lines.append("attacks:")
        for key in sorted(d["attacks"]):
            lines.append(f"  {key}: {d['attacks'][key]}")
    return "\n".join(lines)


def cmd_topo(
    scenario_path: str,
    action: str = "show",
    times: Optional[List[float]] = None,
    seed: int = 0,
    batching: Optional[str] = None,
    export: Optional[str] = None,
    dot: Optional[str] = None,
) -> int:
    """Run a scenario with the topology observer armed and query the
    resulting link-state database.

    ``show`` renders the end-of-run view; ``at <t>`` reconstructs the
    view at time ``t`` from snapshot + deltas (byte-identical to the
    live view the observer held); ``diff <t1> <t2>`` lists the leaf
    changes between two instants; ``health`` prints the derived
    per-object scores.  ``--export`` writes the queried view as JSON
    and ``--dot`` as Graphviz -- both byte-stable for a seeded run
    (the CI topo-smoke step compares two runs with ``cmp``).
    """
    from repro.faults import Scenario, ScenarioError, run_scenario
    from repro.obs import telemetry_session

    times = times or []
    try:
        scenario = Scenario.load(scenario_path)
    except OSError as exc:
        print(f"error: cannot read {scenario_path}: {exc}", file=sys.stderr)
        return 1
    except ScenarioError as exc:
        print(f"error: bad scenario: {exc}", file=sys.stderr)
        return 1
    if scenario.topo is None:
        # the observer is the point of this command: force it on even
        # when the scenario file has no 'topo' key
        scenario.topo = {}
    try:
        with telemetry_session():
            report = run_scenario(
                scenario, seed=seed, batching=(batching == "on")
            )
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    observer = report.topo
    if observer is None:
        print("error: topology observer did not arm", file=sys.stderr)
        return 1

    if action == "at":
        if len(times) != 1:
            print("error: 'at' needs exactly one time", file=sys.stderr)
            return 1
        view = observer.at(times[0])
        sys.stdout.write(view.to_json())
    elif action == "diff":
        if len(times) != 2:
            print("error: 'diff' needs two times", file=sys.stderr)
            return 1
        before, after = observer.at(times[0]), observer.at(times[1])
        changes = before.diff(after)
        for change in changes:
            print(
                f"{change['path']}: {change['before']!r} -> "
                f"{change['after']!r}"
            )
        print(
            f"topo: {len(changes)} changes between t={times[0]:g} "
            f"and t={times[1]:g}",
            file=sys.stderr,
        )
        view = after
    elif action == "health":
        import json

        view = observer.live_view()
        print(json.dumps(view.health(), sort_keys=True, indent=2))
    else:  # show
        view = observer.live_view()
        print(_render_topo_view(view))
    if export:
        if not _write_output(
            export, lambda handle: handle.write(view.to_json())
        ):
            return 1
        print(f"topo: view -> {export}", file=sys.stderr)
    if dot:
        if not _write_output(
            dot, lambda handle: handle.write(view.to_dot())
        ):
            return 1
        print(f"topo: DOT graph -> {dot}", file=sys.stderr)
    mismatches = observer.mismatches
    if mismatches:
        print(
            f"topo: differential verification FAILED "
            f"({len(mismatches)} mismatches)",
            file=sys.stderr,
        )
        for problem in mismatches[:10]:
            print(f"  {problem}", file=sys.stderr)
        return 1
    return 0


def _topo_main(argv: List[str]) -> int:
    """The dedicated ``repro topo`` argument parser (its positional
    sub-action and times clash with the main parser's shape)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro topo",
        description="Query the telemetry-fed topology observatory.",
    )
    parser.add_argument(
        "scenario",
        help="path to a JSON fault scenario (the 'topo' key is forced "
        "on; see examples/chaos_topo.json)",
    )
    parser.add_argument(
        "action",
        nargs="?",
        choices=["show", "at", "diff", "health"],
        default="show",
        help="show the end-of-run view (default), reconstruct the "
        "view 'at' a time, 'diff' two instants, or print the derived "
        "'health' scores",
    )
    parser.add_argument(
        "times",
        nargs="*",
        type=float,
        help="timestamps for 'at' (one) and 'diff' (two)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for the randomized fault schedule (default 0)",
    )
    parser.add_argument(
        "--batching", choices=["on", "off"], default=None,
        help="run the data plane on the batched fast path; the "
        "observed database is identical to the scalar run",
    )
    parser.add_argument(
        "--export", metavar="FILE", default=None,
        help="write the queried view as JSON (byte-stable)",
    )
    parser.add_argument(
        "--dot", metavar="FILE", default=None,
        help="write the queried view as a Graphviz graph",
    )
    args = parser.parse_args(argv)
    return cmd_topo(
        args.scenario,
        action=args.action,
        times=args.times,
        seed=args.seed,
        batching=args.batching,
        export=args.export,
        dot=args.dot,
    )


COMMANDS: Dict[str, Callable[[], int]] = {
    "table6": cmd_table6,
    "worst-case": cmd_worst_case,
    "figures": cmd_figures,
    "hw-vs-sw": cmd_hw_vs_sw,
    "throughput": cmd_throughput,
    "device": cmd_device,
}


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "topo":
        # 'topo' takes its own positional action + timestamps, which
        # the shared parser below cannot express
        return _topo_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's results.",
    )
    parser.add_argument(
        "command",
        choices=[
            *COMMANDS, "all", "stats", "trace", "chaos", "spans",
            "flows", "topo", "bench-report",
        ],
        help="which result to regenerate (or: stats / trace for the "
        "telemetry views, chaos to run a fault scenario, spans to "
        "trace one at span granularity, flows for flow accounting / "
        "traffic matrix / alerts, topo to query the topology "
        "observatory ('topo --help' for its sub-actions), "
        "bench-report to merge the BENCH_*.json benchmark artifacts)",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="chaos/spans/flows: path to a JSON fault scenario "
        "(see examples/chaos_*.json; spans falls back to the "
        "quickstart scenario); bench-report: the results directory "
        "(default benchmarks/results)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="chaos/spans/flows: seed for the randomized schedule and "
        "fault randomness (default 0)",
    )
    parser.add_argument(
        "-o", "--output",
        metavar="FILE",
        default=None,
        help="trace/chaos: write the JSONL event stream / JSON report "
        "to FILE instead of stdout",
    )
    parser.add_argument(
        "--audit",
        metavar="PERIOD",
        type=float,
        default=None,
        help="chaos only: run the data-plane consistency auditor every "
        "PERIOD simulated seconds (overrides the scenario's own "
        "'audit' key)",
    )
    parser.add_argument(
        "--overload",
        choices=["on", "off"],
        default=None,
        help="chaos only: force control-plane overload protection on "
        "or run the unprotected bounded-FIFO baseline (overrides the "
        "scenario's own 'overload.enabled' key)",
    )
    parser.add_argument(
        "--batching",
        choices=["on", "off"],
        default=None,
        help="chaos only: run the data plane on the batched fast path "
        "(per-node flow caches); reports are byte-identical to the "
        "scalar run of the same seed (default: off)",
    )
    parser.add_argument(
        "--mitigation",
        choices=["on", "off"],
        default=None,
        help="chaos only: force the security guards on, or stand them "
        "down for the unmitigated blast-radius baseline (overrides "
        "the scenario's own 'security.enabled' key)",
    )
    parser.add_argument(
        "--controller",
        choices=["on", "off"],
        default=None,
        help="chaos only: arm the centralized PCE controller, or run "
        "it dark for the pure-distributed baseline (overrides the "
        "scenario's own 'controller.enabled' key)",
    )
    parser.add_argument(
        "--list-faults",
        action="store_true",
        help="chaos only: enumerate the fault kinds, their target "
        "arity and accepted params, then exit",
    )
    parser.add_argument(
        "--flow",
        metavar="ID",
        type=int,
        action="append",
        default=None,
        help="trace/spans: restrict to this flow id (repeatable)",
    )
    parser.add_argument(
        "--node",
        metavar="NAME",
        action="append",
        default=None,
        help="trace only: restrict to events at this node (repeatable)",
    )
    parser.add_argument(
        "--fec",
        metavar="PREFIX",
        action="append",
        default=None,
        help="spans only: restrict to traces of this FEC (repeatable)",
    )
    parser.add_argument(
        "--sample-rate",
        metavar="RATE",
        type=float,
        default=1.0,
        help="spans only: head-based sampling rate in [0, 1] "
        "(default 1.0 -- trace everything)",
    )
    parser.add_argument(
        "--export",
        metavar="FILE",
        default=None,
        help="spans: write the traces as Chrome trace-event JSON "
        "(open in Perfetto or chrome://tracing); flows: write the "
        "flow records, matrix snapshots and alert transitions as "
        "JSON Lines",
    )
    parser.add_argument(
        "--slowest",
        metavar="N",
        type=int,
        default=5,
        help="spans only: list the N slowest traces (default 5)",
    )
    parser.add_argument(
        "--top",
        metavar="N",
        type=int,
        default=10,
        help="flows only: list the N heaviest talkers (default 10)",
    )
    parser.add_argument(
        "--matrix",
        metavar="FILE",
        default=None,
        help="flows only: write all traffic-matrix snapshots as one "
        "JSON document",
    )
    parser.add_argument(
        "--prom",
        metavar="FILE",
        default=None,
        help="flows only: write the run's final Prometheus exposition",
    )
    args = parser.parse_args(argv)
    if args.command == "stats":
        return cmd_stats()
    if args.command == "trace":
        return cmd_trace(args.output, flows=args.flow, nodes=args.node)
    if args.command == "chaos":
        return cmd_chaos(
            args.scenario,
            seed=args.seed,
            output=args.output,
            audit=args.audit,
            overload=args.overload,
            batching=args.batching,
            mitigation=args.mitigation,
            controller=args.controller,
            list_faults=args.list_faults,
        )
    if args.command == "flows":
        return cmd_flows(
            args.scenario,
            seed=args.seed,
            top=args.top,
            export=args.export,
            matrix=args.matrix,
            prom=args.prom,
        )
    if args.command == "bench-report":
        return cmd_bench_report(args.scenario)
    if args.command == "spans":
        return cmd_spans(
            args.scenario,
            seed=args.seed,
            sample_rate=args.sample_rate,
            export=args.export,
            flows=args.flow,
            fecs=args.fec,
            slowest=args.slowest,
        )
    if args.command == "all":
        worst = 0
        for name, fn in COMMANDS.items():
            print(f"\n===== {name} =====")
            worst = max(worst, fn())
        return worst
    return COMMANDS[args.command]()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
