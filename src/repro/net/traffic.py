"""Traffic generators.

The paper's introduction motivates MPLS with "resource intensive
Internet applications like voice over Internet Protocol (VoIP) and
real-time streaming video".  These sources reproduce those workloads
synthetically (we have no production traces):

* :class:`CBRSource` -- constant bit rate, the idealized circuit.
* :class:`VoIPSource` -- G.711-shaped voice: 160-byte payloads every
  20 ms (50 pps, 64 kbit/s plus headers), EF-marked.
* :class:`VideoSource` -- frame-structured video: large I-frames and
  smaller P-frames at a configurable frame rate.
* :class:`PoissonSource` -- classic memoryless packet arrivals for
  background/best-effort load.
* :class:`OnOffSource` -- bursty data with exponential on/off holding
  times, the standard model for self-similar-ish elastic traffic.

All sources are deterministic given their ``seed`` -- the benchmarks
depend on run-to-run reproducibility.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.net.addressing import IPv4Address
from repro.net.events import EventScheduler
from repro.net.packet import IPv4Packet

#: DSCP codepoints (RFC 2474 / 3246): Expedited Forwarding for voice,
#: AF41 for video, best effort for data.
DSCP_EF = 46
DSCP_AF41 = 34
DSCP_BE = 0

_flow_counter = iter(range(1, 1 << 31))


class TrafficSource:
    """Base class: emits IPv4 packets into a sink callback.

    ``sink(packet)`` is whatever the caller wires up -- typically the
    ingress LER's receive path.  Subclasses implement
    :meth:`_schedule_next` to model their arrival process.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        sink: Callable[[IPv4Packet], None],
        src: str,
        dst: str,
        dscp: int = DSCP_BE,
        start: float = 0.0,
        stop: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.sink = sink
        self.src = IPv4Address(src)
        self.dst = IPv4Address(dst)
        self.dscp = dscp
        self.start = start
        self.stop = stop
        self.rng = random.Random(seed)
        self.flow_id = next(_flow_counter)
        self.sent = 0
        self.sent_bytes = 0
        self._running = False

    def begin(self) -> None:
        """Arm the source; the first packet fires at ``start``."""
        if self._running:
            raise RuntimeError("source already started")
        self._running = True
        self.scheduler.at(self.start, self._emit)

    def _payload_size(self) -> int:
        raise NotImplementedError

    def _next_interval(self) -> float:
        raise NotImplementedError

    def _emit(self) -> None:
        if self.stop is not None and self.scheduler.now >= self.stop:
            self._running = False
            return
        size = self._payload_size()
        packet = IPv4Packet(
            src=self.src,
            dst=self.dst,
            dscp=self.dscp,
            payload=bytes(size),
            flow_id=self.flow_id,
            seq=self.sent,
            created_at=self.scheduler.now,
        )
        self.sent += 1
        self.sent_bytes += packet.length
        self.sink(packet)
        self.scheduler.after(self._next_interval(), self._emit)


class CBRSource(TrafficSource):
    """Constant bit rate: fixed-size packets at a fixed interval."""

    def __init__(
        self,
        scheduler: EventScheduler,
        sink: Callable[[IPv4Packet], None],
        src: str,
        dst: str,
        rate_bps: float = 1e6,
        packet_size: int = 500,
        **kwargs,
    ) -> None:
        super().__init__(scheduler, sink, src, dst, **kwargs)
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.packet_size = packet_size
        self.interval = (packet_size + 20) * 8 / rate_bps

    def _payload_size(self) -> int:
        return self.packet_size

    def _next_interval(self) -> float:
        return self.interval


class VoIPSource(TrafficSource):
    """G.711 voice: 160-byte frames every 20 ms, EF-marked by default."""

    def __init__(
        self,
        scheduler: EventScheduler,
        sink: Callable[[IPv4Packet], None],
        src: str,
        dst: str,
        dscp: int = DSCP_EF,
        frame_interval: float = 0.020,
        frame_size: int = 160,
        **kwargs,
    ) -> None:
        super().__init__(scheduler, sink, src, dst, dscp=dscp, **kwargs)
        self.frame_interval = frame_interval
        self.frame_size = frame_size

    def _payload_size(self) -> int:
        return self.frame_size

    def _next_interval(self) -> float:
        return self.frame_interval


class VideoSource(TrafficSource):
    """Frame-structured video: an I-frame every ``gop`` frames, P-frames
    otherwise, emitted at ``fps`` frames per second.  Large frames are
    fragmented into MTU-sized packets back-to-back."""

    def __init__(
        self,
        scheduler: EventScheduler,
        sink: Callable[[IPv4Packet], None],
        src: str,
        dst: str,
        dscp: int = DSCP_AF41,
        fps: float = 25.0,
        i_frame_size: int = 12_000,
        p_frame_size: int = 3_000,
        gop: int = 12,
        mtu_payload: int = 1400,
        **kwargs,
    ) -> None:
        super().__init__(scheduler, sink, src, dst, dscp=dscp, **kwargs)
        self.fps = fps
        self.i_frame_size = i_frame_size
        self.p_frame_size = p_frame_size
        self.gop = gop
        self.mtu_payload = mtu_payload
        self._frame_index = 0

    def _emit(self) -> None:
        if self.stop is not None and self.scheduler.now >= self.stop:
            self._running = False
            return
        is_i = self._frame_index % self.gop == 0
        remaining = self.i_frame_size if is_i else self.p_frame_size
        self._frame_index += 1
        while remaining > 0:
            size = min(remaining, self.mtu_payload)
            packet = IPv4Packet(
                src=self.src,
                dst=self.dst,
                dscp=self.dscp,
                payload=bytes(size),
                flow_id=self.flow_id,
                seq=self.sent,
                created_at=self.scheduler.now,
            )
            self.sent += 1
            self.sent_bytes += packet.length
            self.sink(packet)
            remaining -= size
        self.scheduler.after(1.0 / self.fps, self._emit)

    def _payload_size(self) -> int:  # pragma: no cover - unused override
        return self.p_frame_size

    def _next_interval(self) -> float:  # pragma: no cover - unused override
        return 1.0 / self.fps


class PoissonSource(TrafficSource):
    """Memoryless arrivals at ``rate_pps`` with a fixed packet size."""

    def __init__(
        self,
        scheduler: EventScheduler,
        sink: Callable[[IPv4Packet], None],
        src: str,
        dst: str,
        rate_pps: float = 100.0,
        packet_size: int = 500,
        **kwargs,
    ) -> None:
        super().__init__(scheduler, sink, src, dst, **kwargs)
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.rate_pps = rate_pps
        self.packet_size = packet_size

    def _payload_size(self) -> int:
        return self.packet_size

    def _next_interval(self) -> float:
        return self.rng.expovariate(self.rate_pps)


class OnOffSource(TrafficSource):
    """Exponential on/off bursts; CBR at ``peak_bps`` while on."""

    def __init__(
        self,
        scheduler: EventScheduler,
        sink: Callable[[IPv4Packet], None],
        src: str,
        dst: str,
        peak_bps: float = 10e6,
        mean_on_s: float = 0.1,
        mean_off_s: float = 0.4,
        packet_size: int = 1000,
        **kwargs,
    ) -> None:
        super().__init__(scheduler, sink, src, dst, **kwargs)
        self.peak_bps = peak_bps
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.packet_size = packet_size
        self.interval = (packet_size + 20) * 8 / peak_bps
        self._burst_end = 0.0

    def _payload_size(self) -> int:
        return self.packet_size

    def _next_interval(self) -> float:
        now = self.scheduler.now
        if now < self._burst_end:
            return self.interval
        off = self.rng.expovariate(1.0 / self.mean_off_s)
        on = self.rng.expovariate(1.0 / self.mean_on_s)
        self._burst_end = now + off + on
        return off
