"""Network substrate: addressing, packets, layer-2 framing, links,
discrete-event simulation, topologies and traffic generation.

The paper's MPLS routers sit between layer-2 networks (Ethernet, ATM,
Frame Relay -- Figure 1) and an MPLS core.  This subpackage supplies
everything around the routers: the packets they carry, the frames the
LERs adapt, the links and event queue that make a network run, and the
traffic sources (VoIP, video, bursty data) the paper's introduction
motivates.
"""

from repro.net.addressing import IPv4Address, IPv4Prefix
from repro.net.packet import IPv4Packet, MPLSPacket
from repro.net.ethernet import EthernetFrame, ETHERTYPE_IPV4, ETHERTYPE_MPLS
from repro.net.atm import AAL5Frame, ATMCell, segment_aal5, reassemble_aal5
from repro.net.frame_relay import FrameRelayFrame
from repro.net.events import EventScheduler, Event
from repro.net.link import Link, Interface
from repro.net.topology import Topology, TopologyError
from repro.net.network import MPLSNetwork, Delivery, Drop
from repro.net.traffic import (
    CBRSource,
    PoissonSource,
    VoIPSource,
    VideoSource,
    OnOffSource,
)

__all__ = [
    "IPv4Address",
    "IPv4Prefix",
    "IPv4Packet",
    "MPLSPacket",
    "EthernetFrame",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_MPLS",
    "ATMCell",
    "AAL5Frame",
    "segment_aal5",
    "reassemble_aal5",
    "FrameRelayFrame",
    "EventScheduler",
    "Event",
    "Link",
    "Interface",
    "Topology",
    "TopologyError",
    "MPLSNetwork",
    "Delivery",
    "Drop",
    "CBRSource",
    "PoissonSource",
    "VoIPSource",
    "VideoSource",
    "OnOffSource",
]
