"""Discrete event simulation kernel.

A classic calendar queue over a binary heap: events carry a timestamp, a
deterministic tiebreak sequence number (so equal-time events fire in
schedule order -- vital for reproducible network simulations), and a
callback.  The network layer (:mod:`repro.net.link`,
:mod:`repro.net.network`) schedules packet arrivals, transmission
completions and protocol timers on one shared scheduler.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


@dataclass(frozen=True)
class Event:
    """A scheduled callback.  Returned by :meth:`EventScheduler.at` so
    callers can cancel it."""

    time: float
    seq: int
    fn: Callable[[], Any] = field(compare=False)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventScheduler:
    """A deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Event] = []
        self._cancelled: set = set()
        self._seq = itertools.count()
        self.processed = 0

    def at(self, time: float, fn: Callable[[], Any]) -> Event:
        """Schedule ``fn`` to run at absolute ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        event = Event(time, next(self._seq), fn)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay: float, fn: Callable[[], Any]) -> Event:
        """Schedule ``fn`` after a relative ``delay``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.at(self.now + delay, fn)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (lazy removal)."""
        self._cancelled.add((event.time, event.seq))

    @property
    def pending(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def _pop(self) -> Optional[Event]:
        while self._heap:
            event = heapq.heappop(self._heap)
            key = (event.time, event.seq)
            if key in self._cancelled:
                self._cancelled.discard(key)
                continue
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Run events in order until the queue drains or ``until``.

        Returns the number of events processed.  ``max_events`` guards
        against runaway self-rescheduling sources.
        """
        count = 0
        while count < max_events:
            if not self._heap:
                break
            head = self._heap[0]
            if (head.time, head.seq) in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard((head.time, head.seq))
                continue
            if until is not None and head.time > until:
                break
            event = self._pop()
            if event is None:
                break
            self.now = event.time
            event.fn()
            count += 1
            self.processed += 1
        else:
            raise RuntimeError(
                f"event budget of {max_events} exhausted at t={self.now}"
            )
        if until is not None and until > self.now:
            self.now = until
        return count

    def step(self) -> bool:
        """Run exactly one event; returns False if the queue is empty."""
        event = self._pop()
        if event is None:
            return False
        self.now = event.time
        event.fn()
        self.processed += 1
        return True
