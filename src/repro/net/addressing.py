"""IPv4 addresses and prefixes.

A tiny, dependency-free reimplementation of the parts of
``ipaddress`` the simulator needs, tuned for the hot path: addresses
are plain 32-bit integers wrapped in a value type, and longest-prefix
matching is a mask-and-compare.  (The stdlib module would work but
allocates noticeably more per packet; the forwarding engine calls
these on every simulated packet.)
"""

from __future__ import annotations

from functools import lru_cache
from typing import Union


class IPv4Address:
    """A 32-bit IPv4 address value type."""

    __slots__ = ("_value",)

    def __init__(self, value: Union[int, str, "IPv4Address"]) -> None:
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= 0xFFFFFFFF:
                raise ValueError(f"{value} is not a 32-bit address")
            self._value = value
        elif isinstance(value, str):
            self._value = _parse_dotted(value)
        else:
            raise TypeError(f"cannot build an IPv4Address from {value!r}")

    @property
    def value(self) -> int:
        return self._value

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        if isinstance(other, str):
            return self._value == _parse_dotted(other)
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        return self._value < IPv4Address(other)._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __str__(self) -> str:
        v = self._value
        return f"{v >> 24}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}"

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Address":
        if len(data) != 4:
            raise ValueError("an IPv4 address is 4 bytes")
        return cls(int.from_bytes(data, "big"))


@lru_cache(maxsize=4096)
def _parse_dotted(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"{text!r} is not dotted-quad IPv4")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"{text!r} is not dotted-quad IPv4")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"octet {octet} out of range in {text!r}")
        value = (value << 8) | octet
    return value


class IPv4Prefix:
    """An IPv4 prefix ``network/length`` supporting containment tests.

    The network address is canonicalized (host bits cleared) on
    construction, so ``IPv4Prefix('10.1.2.3/16')`` equals
    ``IPv4Prefix('10.1.0.0/16')``.
    """

    __slots__ = ("network", "length", "_mask")

    def __init__(
        self,
        network: Union[str, int, IPv4Address],
        length: int = None,  # type: ignore[assignment]
    ) -> None:
        if isinstance(network, str) and "/" in network:
            if length is not None:
                raise ValueError("prefix length given twice")
            network, length_text = network.split("/", 1)
            length = int(length_text)
        if length is None:
            length = 32
        if not 0 <= length <= 32:
            raise ValueError(f"prefix length {length} out of range 0..32")
        self.length = length
        self._mask = 0 if length == 0 else (~0 << (32 - length)) & 0xFFFFFFFF
        self.network = IPv4Address(IPv4Address(network).value & self._mask)

    @property
    def mask(self) -> int:
        return self._mask

    def contains(self, address: Union[str, int, IPv4Address]) -> bool:
        return (IPv4Address(address).value & self._mask) == self.network.value

    def __contains__(self, address: Union[str, int, IPv4Address]) -> bool:
        return self.contains(address)

    def overlaps(self, other: "IPv4Prefix") -> bool:
        shorter = self if self.length <= other.length else other
        longer = other if shorter is self else self
        return shorter.contains(longer.network)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Prefix):
            return (
                self.network == other.network and self.length == other.length
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.network.value, self.length))

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    def __repr__(self) -> str:
        return f"IPv4Prefix('{self}')"
