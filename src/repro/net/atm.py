"""ATM adaptation: AAL5 segmentation and reassembly.

The second layer-2 technology of the paper's Figure 1.  An IPv4 (or
labelled) packet crossing an ATM attachment circuit is carried in an
AAL5 CPCS-PDU, segmented into 48-byte cell payloads; the final cell is
flagged via the PTI user-to-user bit, and the trailer carries the
payload length and a CRC-32 over the whole padded PDU.

This is a functional model of AAL5 (RFC 2684 style encapsulation is
implicit -- we carry the raw packet as the CPCS payload), sufficient
for the LER's ingress/egress path to be exercised with genuine
segmentation, loss detection, and length/CRC validation.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterable, List

CELL_PAYLOAD = 48
CELL_HEADER = 5
CELL_SIZE = CELL_HEADER + CELL_PAYLOAD
AAL5_TRAILER = 8  # 2 UU/CPI + 2 length + 4 CRC


class ATMError(ValueError):
    """Segmentation/reassembly failure."""


@dataclass(frozen=True)
class ATMCell:
    """One 53-byte ATM cell.

    Only the fields the adaptation layer needs are modelled explicitly:
    the VPI/VCI circuit identifiers and the PTI bit that marks the last
    cell of an AAL5 PDU.
    """

    vpi: int
    vci: int
    pti_last: bool
    payload: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.vpi <= 0xFF:
            raise ATMError(f"VPI {self.vpi} out of 8-bit range")
        if not 0 <= self.vci <= 0xFFFF:
            raise ATMError(f"VCI {self.vci} out of 16-bit range")
        if len(self.payload) != CELL_PAYLOAD:
            raise ATMError(
                f"cell payload must be {CELL_PAYLOAD} bytes, "
                f"got {len(self.payload)}"
            )

    def serialize(self) -> bytes:
        pti = 0x02 if self.pti_last else 0x00
        header = bytes(
            [
                (self.vpi >> 4) & 0x0F,
                ((self.vpi & 0x0F) << 4) | ((self.vci >> 12) & 0x0F),
                (self.vci >> 4) & 0xFF,
                ((self.vci & 0x0F) << 4) | (pti << 1),
                0,  # HEC placeholder
            ]
        )
        return header + self.payload

    @classmethod
    def deserialize(cls, data: bytes) -> "ATMCell":
        if len(data) != CELL_SIZE:
            raise ATMError(f"an ATM cell is {CELL_SIZE} bytes, got {len(data)}")
        vpi = ((data[0] & 0x0F) << 4) | (data[1] >> 4)
        vci = ((data[1] & 0x0F) << 12) | (data[2] << 4) | (data[3] >> 4)
        pti_last = bool((data[3] >> 1) & 0x02)
        return cls(vpi=vpi, vci=vci, pti_last=pti_last, payload=data[5:])


@dataclass(frozen=True)
class AAL5Frame:
    """A reassembled AAL5 CPCS-PDU: the packet bytes plus its circuit."""

    vpi: int
    vci: int
    payload: bytes


def segment_aal5(payload: bytes, vpi: int, vci: int) -> List[ATMCell]:
    """Segment ``payload`` into AAL5 cells on circuit ``vpi/vci``.

    The PDU is padded so that payload + 8-byte trailer fills a whole
    number of cells; the trailer's length field lets reassembly strip
    the padding, and the CRC-32 detects corruption or cell loss.
    """
    length = len(payload)
    if length == 0:
        raise ATMError("cannot segment an empty payload")
    if length > 0xFFFF:
        raise ATMError(f"AAL5 payload of {length} bytes exceeds 65535")
    pad = (-(length + AAL5_TRAILER)) % CELL_PAYLOAD
    padded = payload + b"\x00" * pad
    trailer_wo_crc = b"\x00\x00" + length.to_bytes(2, "big")
    crc = zlib.crc32(padded + trailer_wo_crc).to_bytes(4, "big")
    pdu = padded + trailer_wo_crc + crc
    cells = []
    for offset in range(0, len(pdu), CELL_PAYLOAD):
        chunk = pdu[offset : offset + CELL_PAYLOAD]
        cells.append(
            ATMCell(
                vpi=vpi,
                vci=vci,
                pti_last=(offset + CELL_PAYLOAD == len(pdu)),
                payload=chunk,
            )
        )
    return cells


def reassemble_aal5(cells: Iterable[ATMCell]) -> AAL5Frame:
    """Reassemble cells back into the CPCS payload.

    Cells must belong to one circuit and end with the PTI-flagged last
    cell; a missing cell surfaces as a CRC or length failure, exactly as
    on real hardware.
    """
    cells = list(cells)
    if not cells:
        raise ATMError("no cells to reassemble")
    vpi, vci = cells[0].vpi, cells[0].vci
    for cell in cells:
        if (cell.vpi, cell.vci) != (vpi, vci):
            raise ATMError(
                f"interleaved circuits: {vpi}/{vci} vs {cell.vpi}/{cell.vci}"
            )
    if not cells[-1].pti_last:
        raise ATMError("last cell does not carry the end-of-PDU flag")
    for cell in cells[:-1]:
        if cell.pti_last:
            raise ATMError("end-of-PDU flag on a non-final cell")
    pdu = b"".join(cell.payload for cell in cells)
    if len(pdu) < AAL5_TRAILER:
        raise ATMError("PDU shorter than the AAL5 trailer")
    crc = int.from_bytes(pdu[-4:], "big")
    if zlib.crc32(pdu[:-4]) != crc:
        raise ATMError("AAL5 CRC mismatch (corruption or cell loss)")
    length = int.from_bytes(pdu[-6:-4], "big")
    if length == 0 or length > len(pdu) - AAL5_TRAILER:
        raise ATMError(f"AAL5 length field {length} inconsistent with PDU")
    return AAL5Frame(vpi=vpi, vci=vci, payload=pdu[:length])
