"""Plain IP hop-by-hop forwarding: the pre-MPLS baseline.

The paper's premise inherits the classic argument for label switching:
conventional routers perform an independent longest-prefix-match
routing decision at *every* hop, while an LSR does one exact-match
label lookup.  This module supplies that baseline as a node type
pluggable into :class:`~repro.net.network.MPLSNetwork`, so benchmarks
can compare the two data planes on identical topologies and traffic:

* :class:`IPRouterNode` -- forwards IPv4 packets by longest-prefix
  match over a FIB, decrementing the TTL per hop, counting the
  prefixes scanned (the software cost model prices them),
* :func:`populate_fibs` -- builds every node's FIB from the converged
  SPF view, given which prefixes live at which edge routers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from repro.control.routing import LinkStateDatabase
from repro.mpls.forwarding import Action, ForwardingDecision
from repro.mpls.router import LSRNode, RouterRole
from repro.net.addressing import IPv4Prefix
from repro.net.packet import IPv4Packet, MPLSPacket
from repro.net.topology import Topology


@dataclass(frozen=True)
class FIBEntry:
    prefix: IPv4Prefix
    next_hop: Optional[str]  # None = locally attached (deliver)


class IPRouterNode(LSRNode):
    """A conventional router: LPM + TTL decrement at every hop.

    Inherits the node plumbing (interfaces, stats) from
    :class:`LSRNode` but replaces the data plane entirely; the
    MPLS tables stay empty.
    """

    def __init__(
        self,
        name: str,
        role: RouterRole = RouterRole.LSR,
        interfaces=None,
    ) -> None:
        super().__init__(name, role, interfaces)
        self._fib: List[FIBEntry] = []
        #: total prefixes examined across all lookups (the LPM cost)
        self.prefixes_scanned = 0
        self.lookups = 0

    # -- FIB management ------------------------------------------------------
    def install_prefix(
        self, prefix: Union[str, IPv4Prefix], next_hop: Optional[str]
    ) -> None:
        prefix = (
            prefix if isinstance(prefix, IPv4Prefix) else IPv4Prefix(prefix)
        )
        self._fib = [e for e in self._fib if e.prefix != prefix]
        self._fib.append(FIBEntry(prefix, next_hop))
        # longest prefix first, as a real FIB resolves
        self._fib.sort(key=lambda e: -e.prefix.length)

    @property
    def fib_size(self) -> int:
        return len(self._fib)

    def lookup(self, packet: IPv4Packet) -> Optional[FIBEntry]:
        """Longest-prefix match, counting entries scanned."""
        self.lookups += 1
        for scanned, entry in enumerate(self._fib, start=1):
            if entry.prefix.contains(packet.dst):
                self.prefixes_scanned += scanned
                return entry
        self.prefixes_scanned += len(self._fib)
        return None

    # -- the data plane -------------------------------------------------------
    def receive(
        self, packet: Union[IPv4Packet, MPLSPacket]
    ) -> ForwardingDecision:
        self.stats.received += 1
        if isinstance(packet, MPLSPacket):
            decision = ForwardingDecision(
                Action.DISCARD,
                reason=f"{self.name}: labelled packet at a plain IP router",
            )
        else:
            decision = self._forward(packet)
        decision = self._fill_interface(decision)
        self.stats.record(decision)
        return decision

    def _forward(self, packet: IPv4Packet) -> ForwardingDecision:
        entry = self.lookup(packet)
        if entry is None:
            return ForwardingDecision(
                Action.DISCARD,
                reason=f"{self.name}: no route to {packet.dst}",
            )
        if entry.next_hop is None:
            return ForwardingDecision(Action.FORWARD_IP, packet=packet)
        if packet.ttl <= 1:
            return ForwardingDecision(
                Action.DISCARD,
                reason=f"{self.name}: IPv4 TTL expired",
            )
        return ForwardingDecision(
            Action.FORWARD_IP,
            packet=packet.decremented(),
            next_hop=entry.next_hop,
        )


def populate_fibs(
    topology: Topology,
    nodes: Dict[str, IPRouterNode],
    attached: Dict[str, Iterable[Union[str, IPv4Prefix]]],
    extra_prefixes: int = 0,
) -> None:
    """Fill every node's FIB from the converged SPF view.

    ``attached`` maps edge node -> prefixes that live behind it.
    ``extra_prefixes`` pads each FIB with that many non-matching
    routes (a realistic Internet-sized RIB for the cost benchmarks --
    every real lookup must scan past unrelated prefixes).
    """
    lsdb = LinkStateDatabase(topology)
    for name, node in nodes.items():
        spf = lsdb.spf(name)
        for egress, prefixes in attached.items():
            for prefix in prefixes:
                if egress == name:
                    node.install_prefix(prefix, None)
                else:
                    nh = spf.next_hop(egress)
                    if nh is not None:
                        node.install_prefix(prefix, nh)
        for i in range(extra_prefixes):
            # pad with /24s from the 198.18.0.0/15 benchmark range
            third = (i >> 8) & 1
            node.install_prefix(
                f"198.{18 + third}.{i & 0xFF}.0/24",
                next_hop=topology.neighbors(name)[0],
            )
