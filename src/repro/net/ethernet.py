"""Ethernet II framing with MPLS encapsulation (RFC 3032 section 5).

The paper's Figure 1 shows Ethernet as one of the layer-2 networks an
LER borders.  MPLS-over-Ethernet uses dedicated ethertypes: 0x8847 for
unicast labelled packets, 0x0800 for plain IPv4.  The codec here is a
real byte-level encoder/decoder (including the FCS placeholder) so the
ingress/egress packet-processing modules operate on genuine frames.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Union

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_MPLS = 0x8847
ETHERTYPE_MPLS_MCAST = 0x8848

#: Minimum payload length; shorter payloads are zero-padded per 802.3.
MIN_PAYLOAD = 46
MAX_PAYLOAD = 1500


class FramingError(ValueError):
    """A frame failed to parse or validate."""


def _mac_bytes(mac: Union[str, bytes]) -> bytes:
    if isinstance(mac, bytes):
        if len(mac) != 6:
            raise FramingError(f"MAC must be 6 bytes, got {len(mac)}")
        return mac
    parts = mac.split(":")
    if len(parts) != 6:
        raise FramingError(f"{mac!r} is not a MAC address")
    try:
        return bytes(int(p, 16) for p in parts)
    except ValueError as exc:
        raise FramingError(f"{mac!r} is not a MAC address") from exc


def _mac_str(mac: bytes) -> str:
    return ":".join(f"{b:02x}" for b in mac)


@dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet II frame.

    ``payload`` carries either a serialized IPv4 packet
    (``ethertype == ETHERTYPE_IPV4``) or an MPLS label stack followed by
    the IPv4 packet (``ethertype == ETHERTYPE_MPLS``).
    """

    dst_mac: bytes
    src_mac: bytes
    ethertype: int
    payload: bytes

    def __post_init__(self) -> None:
        object.__setattr__(self, "dst_mac", _mac_bytes(self.dst_mac))
        object.__setattr__(self, "src_mac", _mac_bytes(self.src_mac))
        if not 0 <= self.ethertype <= 0xFFFF:
            raise FramingError(f"ethertype {self.ethertype:#x} out of range")
        if len(self.payload) > MAX_PAYLOAD:
            raise FramingError(
                f"payload of {len(self.payload)} bytes exceeds the "
                f"{MAX_PAYLOAD}-byte Ethernet MTU"
            )

    @property
    def dst(self) -> str:
        return _mac_str(self.dst_mac)

    @property
    def src(self) -> str:
        return _mac_str(self.src_mac)

    @property
    def is_mpls(self) -> bool:
        return self.ethertype in (ETHERTYPE_MPLS, ETHERTYPE_MPLS_MCAST)

    def serialize(self) -> bytes:
        """Wire bytes: header + padded payload + CRC32 FCS."""
        payload = self.payload
        if len(payload) < MIN_PAYLOAD:
            payload = payload + b"\x00" * (MIN_PAYLOAD - len(payload))
        body = (
            self.dst_mac
            + self.src_mac
            + self.ethertype.to_bytes(2, "big")
            + payload
        )
        fcs = zlib.crc32(body).to_bytes(4, "little")
        return body + fcs

    @classmethod
    def deserialize(cls, data: bytes, true_payload_len: int = None) -> "EthernetFrame":  # type: ignore[assignment]
        """Parse wire bytes, verifying the FCS.

        ``true_payload_len`` strips 802.3 padding when the caller knows
        the inner length (the IPv4 total-length field supplies it in
        practice); if omitted, padding is preserved.
        """
        if len(data) < 14 + MIN_PAYLOAD + 4:
            raise FramingError(f"frame of {len(data)} bytes is too short")
        body, fcs = data[:-4], data[-4:]
        if zlib.crc32(body).to_bytes(4, "little") != fcs:
            raise FramingError("FCS mismatch: corrupt frame")
        payload = body[14:]
        if true_payload_len is not None:
            if true_payload_len > len(payload):
                raise FramingError("declared payload longer than frame")
            payload = payload[:true_payload_len]
        return cls(
            dst_mac=body[0:6],
            src_mac=body[6:12],
            ethertype=int.from_bytes(body[12:14], "big"),
            payload=payload,
        )
