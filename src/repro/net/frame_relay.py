"""Frame Relay (Q.922) framing.

The third layer-2 technology the paper lists.  A Frame Relay frame is
an HDLC-style frame with a two-byte address field carrying the 10-bit
DLCI plus congestion bits (FECN/BECN/DE), the payload, and a 16-bit
FCS (CRC-CCITT).  Flag bytes and bit stuffing are abstracted away --
the simulator exchanges frames, not bit streams -- but the address
field and FCS are encoded and validated for real.
"""

from __future__ import annotations

from dataclasses import dataclass


class FrameRelayError(ValueError):
    """A frame failed to parse or validate."""


def _crc16_ccitt(data: bytes) -> int:
    """CRC-16/X.25 as used by Q.922 (reflected, init 0xFFFF, xorout
    0xFFFF)."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 0x8408
            else:
                crc >>= 1
    return crc ^ 0xFFFF


@dataclass(frozen=True)
class FrameRelayFrame:
    """One Frame Relay frame on a PVC identified by its DLCI."""

    dlci: int
    payload: bytes
    fecn: bool = False
    becn: bool = False
    de: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.dlci <= 1023:
            raise FrameRelayError(f"DLCI {self.dlci} out of 10-bit range")
        if not self.payload:
            raise FrameRelayError("empty Frame Relay payload")

    def serialize(self) -> bytes:
        """Address field (2 bytes) + payload + FCS (2 bytes)."""
        # Q.922 address: DLCI split 6/4 across the two bytes, C/R = 0,
        # EA0 = 0 in the first byte, EA1 = 1 in the second.
        hi = ((self.dlci >> 4) & 0x3F) << 2
        lo = (
            ((self.dlci & 0x0F) << 4)
            | (int(self.fecn) << 3)
            | (int(self.becn) << 2)
            | (int(self.de) << 1)
            | 0x01  # EA
        )
        body = bytes([hi, lo]) + self.payload
        return body + _crc16_ccitt(body).to_bytes(2, "little")

    @classmethod
    def deserialize(cls, data: bytes) -> "FrameRelayFrame":
        if len(data) < 5:
            raise FrameRelayError(f"frame of {len(data)} bytes too short")
        body, fcs = data[:-2], data[-2:]
        if _crc16_ccitt(body).to_bytes(2, "little") != fcs:
            raise FrameRelayError("FCS mismatch: corrupt frame")
        hi, lo = body[0], body[1]
        if not lo & 0x01:
            raise FrameRelayError("extended (3+ byte) addresses unsupported")
        dlci = ((hi >> 2) << 4) | (lo >> 4)
        return cls(
            dlci=dlci,
            payload=body[2:],
            fecn=bool(lo & 0x08),
            becn=bool(lo & 0x04),
            de=bool(lo & 0x02),
        )
