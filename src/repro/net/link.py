"""Point-to-point links with bandwidth, delay and output queuing.

A :class:`Link` is full-duplex: each direction is an independent
:class:`SimplexChannel` with its own transmitter and output queue.  The
channel model is the standard store-and-forward one: a packet waits in
the output queue, occupies the transmitter for ``bits / bandwidth``
seconds, then arrives at the far end after the propagation ``delay``.

Queues are pluggable through a tiny protocol (``enqueue`` / ``dequeue``
/ ``__len__``) so the QoS subpackage's priority and WFQ schedulers can
replace the default drop-tail FIFO -- that substitution is exactly the
experiment behind the paper's QoS motivation.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional, Tuple

from repro.net.events import EventScheduler
from repro.obs.telemetry import get_telemetry


class DropTailQueue:
    """A bounded FIFO; the baseline best-effort queue."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: Deque[Any] = deque()
        self.dropped = 0

    def enqueue(self, packet: Any, cos: int = 0) -> bool:
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return False
        self._queue.append(packet)
        return True

    def dequeue(self) -> Optional[Any]:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


@dataclass(frozen=True)
class Interface:
    """A (node, interface-name) attachment point."""

    node: str
    name: str

    def __str__(self) -> str:
        return f"{self.node}:{self.name}"


def _units(packet: Any) -> int:
    """Packets represented by one queued/transmitted unit: 1 for a
    scalar packet, the train length for a flow aggregate (batched
    mode).  Keeps per-packet counters exact without the link layer
    importing the aggregate type."""
    if getattr(packet, "is_aggregate", False):
        return packet.count
    return 1


class SimplexChannel:
    """One direction of a link."""

    def __init__(
        self,
        scheduler: EventScheduler,
        src: Interface,
        dst: Interface,
        bandwidth_bps: float,
        delay_s: float,
        queue: Optional[Any] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if delay_s < 0:
            raise ValueError(f"negative propagation delay {delay_s}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        self.scheduler = scheduler
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.queue = queue if queue is not None else DropTailQueue()
        self.loss_rate = loss_rate
        self._loss_rng = random.Random(loss_seed)
        self.on_deliver: Optional[Callable[[Interface, Any], None]] = None
        self._busy = False
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped = 0
        self.lost = 0
        #: Fault state: a down channel drops everything (queued,
        #: transmitting, and propagating packets all count as lost).
        self.up = True
        #: Generation counter bumped on every down transition, so
        #: callbacks scheduled before a failure are invalidated even if
        #: the channel comes back up before they fire.
        self._epoch = 0
        #: Deterministic corruption: each transmitted packet is passed
        #: through ``corruptor`` with probability ``corrupt_rate``.
        #: Without a corruptor the packet is counted as lost instead.
        self.corrupt_rate = 0.0
        self._corrupt_rng = random.Random(loss_seed ^ 0x5EED)
        self.corruptor: Optional[Callable[[Any], Any]] = None
        self.corrupted = 0

    # -- fault state --------------------------------------------------------
    def set_down(self) -> None:
        """Fail the channel: flush the queue and lose in-flight packets."""
        if not self.up:
            return
        self.up = False
        self._epoch += 1
        tel = get_telemetry()
        while True:
            item = self.queue.dequeue()
            if item is None:
                break
            count = _units(item[0])
            self.lost += count
            if tel.enabled:
                tel.link_drops.labels(
                    self.src.node, self.dst.node, "link-down"
                ).inc(count)
        self._busy = False

    def set_up(self) -> None:
        self.up = True

    def send(self, packet: Any, size_bytes: int, cos: int = 0) -> bool:
        """Queue a packet for transmission.  Returns False on drop."""
        tel = get_telemetry()
        if not self.up:
            self.dropped += _units(packet)
            if tel.enabled:
                tel.link_drops.labels(
                    self.src.node, self.dst.node, "link-down"
                ).inc(_units(packet))
            return False
        if not self.queue.enqueue((packet, size_bytes), cos):
            self.dropped += _units(packet)
            if tel.enabled:
                tel.link_drops.labels(
                    self.src.node, self.dst.node, "queue-overflow"
                ).inc(_units(packet))
            return False
        if tel.enabled:
            tel.queue_depth.labels(self.src.node, self.dst.node).set(
                len(self.queue)
            )
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        item = self.queue.dequeue()
        if item is None:
            self._busy = False
            return
        packet, size_bytes = item
        tel = get_telemetry()
        if tel.enabled:
            tel.queue_depth.labels(self.src.node, self.dst.node).set(
                len(self.queue)
            )
        self._busy = True
        tx_time = size_bytes * 8 / self.bandwidth_bps
        epoch = self._epoch
        self.scheduler.after(
            tx_time, lambda: self._tx_done(packet, size_bytes, epoch)
        )

    def _tx_done(self, packet: Any, size_bytes: int, epoch: int) -> None:
        if epoch != self._epoch:
            return  # the channel went down while transmitting
        count = _units(packet)
        self.tx_packets += count
        self.tx_bytes += size_bytes
        tel = get_telemetry()
        if tel.enabled:
            tel.link_tx_packets.labels(self.src.node, self.dst.node).inc(
                count
            )
            tel.link_tx_bytes.labels(self.src.node, self.dst.node).inc(
                size_bytes
            )
            # per-interval utilization accounting for the traffic-matrix
            # collector; rides the existing guard
            if tel.flows is not None:
                tel.flows.record_link_tx(
                    self.src.node, self.dst.node, size_bytes
                )
        if self.loss_rate and self._loss_rng.random() < self.loss_rate:
            # lost on the wire: transmitted but never arrives (for an
            # aggregate the whole train is the loss unit -- one RNG
            # draw, so the scalar path's draw sequence is untouched)
            self.lost += count
            if tel.enabled:
                tel.link_drops.labels(
                    self.src.node, self.dst.node, "wire-loss"
                ).inc(count)
        else:
            if self.corrupt_rate and (
                self._corrupt_rng.random() < self.corrupt_rate
            ):
                self.corrupted += count
                if tel.enabled:
                    tel.link_drops.labels(
                        self.src.node, self.dst.node, "corrupted"
                    ).inc(count)
                if self.corruptor is None:
                    # no corruptor: an unrecoverable frame, i.e. a loss
                    self.lost += count
                    self._start_next()
                    return
                if getattr(packet, "is_aggregate", False):
                    packet = packet.with_template(
                        self.corruptor(packet.template)
                    )
                else:
                    packet = self.corruptor(packet)
            self.scheduler.after(
                self.delay_s, lambda: self._arrive(packet, epoch)
            )
        self._start_next()

    def _arrive(self, packet: Any, epoch: int) -> None:
        if epoch != self._epoch:
            return  # the channel went down while the packet propagated
        if self.on_deliver is not None:
            self.on_deliver(self.dst, packet)

    @property
    def utilization_bytes(self) -> int:
        return self.tx_bytes


class Link:
    """A full-duplex point-to-point link between two interfaces.

    Parameters
    ----------
    scheduler:
        Shared event scheduler.
    a, b:
        The two endpoints.
    bandwidth_bps:
        Capacity of each direction.
    delay_s:
        One-way propagation delay.
    queue_factory:
        Callable producing a fresh queue per direction (so the two
        directions never share queue state).
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        a: Interface,
        b: Interface,
        bandwidth_bps: float = 100e6,
        delay_s: float = 1e-3,
        queue_factory: Callable[[], Any] = DropTailQueue,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> None:
        self.a = a
        self.b = b
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.forward = SimplexChannel(
            scheduler, a, b, bandwidth_bps, delay_s, queue_factory(),
            loss_rate=loss_rate, loss_seed=loss_seed,
        )
        self.reverse = SimplexChannel(
            scheduler, b, a, bandwidth_bps, delay_s, queue_factory(),
            loss_rate=loss_rate, loss_seed=loss_seed + 1,
        )

    # -- fault state --------------------------------------------------------
    @property
    def up(self) -> bool:
        return self.forward.up and self.reverse.up

    def fail(self) -> None:
        """Take both directions down; queued and in-flight packets are
        lost."""
        self.forward.set_down()
        self.reverse.set_down()

    def heal(self) -> None:
        self.forward.set_up()
        self.reverse.set_up()

    def set_loss(self, rate: float) -> None:
        """Set the wire loss probability on both directions."""
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {rate}")
        self.forward.loss_rate = rate
        self.reverse.loss_rate = rate

    def set_corruption(
        self, rate: float, corruptor: Optional[Callable[[Any], Any]] = None
    ) -> None:
        """Corrupt each transmitted packet with probability ``rate``.

        With a ``corruptor`` the mangled packet still arrives (and the
        receiver must cope); without one corruption is counted as loss.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"corrupt rate must be in [0, 1], got {rate}")
        for channel in (self.forward, self.reverse):
            channel.corrupt_rate = rate
            channel.corruptor = corruptor

    def channel_from(self, node: str) -> SimplexChannel:
        """The outbound channel as seen from ``node``."""
        if node == self.a.node:
            return self.forward
        if node == self.b.node:
            return self.reverse
        raise KeyError(f"{node} is not an endpoint of {self}")

    def other_end(self, node: str) -> Interface:
        if node == self.a.node:
            return self.b
        if node == self.b.node:
            return self.a
        raise KeyError(f"{node} is not an endpoint of {self}")

    def endpoints(self) -> Tuple[Interface, Interface]:
        return self.a, self.b

    def __repr__(self) -> str:
        return f"<Link {self.a} <-> {self.b} {self.bandwidth_bps/1e6:g}Mbps>"
