"""Point-to-point links with bandwidth, delay and output queuing.

A :class:`Link` is full-duplex: each direction is an independent
:class:`SimplexChannel` with its own transmitter and output queue.  The
channel model is the standard store-and-forward one: a packet waits in
the output queue, occupies the transmitter for ``bits / bandwidth``
seconds, then arrives at the far end after the propagation ``delay``.

Queues are pluggable through a tiny protocol (``enqueue`` / ``dequeue``
/ ``__len__``) so the QoS subpackage's priority and WFQ schedulers can
replace the default drop-tail FIFO -- that substitution is exactly the
experiment behind the paper's QoS motivation.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional, Tuple

from repro.net.events import EventScheduler
from repro.obs.telemetry import get_telemetry


class DropTailQueue:
    """A bounded FIFO; the baseline best-effort queue."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: Deque[Any] = deque()
        self.dropped = 0

    def enqueue(self, packet: Any, cos: int = 0) -> bool:
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return False
        self._queue.append(packet)
        return True

    def dequeue(self) -> Optional[Any]:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


@dataclass(frozen=True)
class Interface:
    """A (node, interface-name) attachment point."""

    node: str
    name: str

    def __str__(self) -> str:
        return f"{self.node}:{self.name}"


class SimplexChannel:
    """One direction of a link."""

    def __init__(
        self,
        scheduler: EventScheduler,
        src: Interface,
        dst: Interface,
        bandwidth_bps: float,
        delay_s: float,
        queue: Optional[Any] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if delay_s < 0:
            raise ValueError(f"negative propagation delay {delay_s}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        self.scheduler = scheduler
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.queue = queue if queue is not None else DropTailQueue()
        self.loss_rate = loss_rate
        self._loss_rng = random.Random(loss_seed)
        self.on_deliver: Optional[Callable[[Interface, Any], None]] = None
        self._busy = False
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped = 0
        self.lost = 0

    def send(self, packet: Any, size_bytes: int, cos: int = 0) -> bool:
        """Queue a packet for transmission.  Returns False on drop."""
        tel = get_telemetry()
        if not self.queue.enqueue((packet, size_bytes), cos):
            self.dropped += 1
            if tel.enabled:
                tel.link_drops.labels(
                    self.src.node, self.dst.node, "queue-overflow"
                ).inc()
            return False
        if tel.enabled:
            tel.queue_depth.labels(self.src.node, self.dst.node).set(
                len(self.queue)
            )
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        item = self.queue.dequeue()
        if item is None:
            self._busy = False
            return
        packet, size_bytes = item
        tel = get_telemetry()
        if tel.enabled:
            tel.queue_depth.labels(self.src.node, self.dst.node).set(
                len(self.queue)
            )
        self._busy = True
        tx_time = size_bytes * 8 / self.bandwidth_bps
        self.scheduler.after(tx_time, lambda: self._tx_done(packet, size_bytes))

    def _tx_done(self, packet: Any, size_bytes: int) -> None:
        self.tx_packets += 1
        self.tx_bytes += size_bytes
        tel = get_telemetry()
        if tel.enabled:
            tel.link_tx_packets.labels(self.src.node, self.dst.node).inc()
            tel.link_tx_bytes.labels(self.src.node, self.dst.node).inc(
                size_bytes
            )
        if self.loss_rate and self._loss_rng.random() < self.loss_rate:
            # lost on the wire: transmitted but never arrives
            self.lost += 1
            if tel.enabled:
                tel.link_drops.labels(
                    self.src.node, self.dst.node, "wire-loss"
                ).inc()
        else:
            self.scheduler.after(self.delay_s, lambda: self._arrive(packet))
        self._start_next()

    def _arrive(self, packet: Any) -> None:
        if self.on_deliver is not None:
            self.on_deliver(self.dst, packet)

    @property
    def utilization_bytes(self) -> int:
        return self.tx_bytes


class Link:
    """A full-duplex point-to-point link between two interfaces.

    Parameters
    ----------
    scheduler:
        Shared event scheduler.
    a, b:
        The two endpoints.
    bandwidth_bps:
        Capacity of each direction.
    delay_s:
        One-way propagation delay.
    queue_factory:
        Callable producing a fresh queue per direction (so the two
        directions never share queue state).
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        a: Interface,
        b: Interface,
        bandwidth_bps: float = 100e6,
        delay_s: float = 1e-3,
        queue_factory: Callable[[], Any] = DropTailQueue,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> None:
        self.a = a
        self.b = b
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.forward = SimplexChannel(
            scheduler, a, b, bandwidth_bps, delay_s, queue_factory(),
            loss_rate=loss_rate, loss_seed=loss_seed,
        )
        self.reverse = SimplexChannel(
            scheduler, b, a, bandwidth_bps, delay_s, queue_factory(),
            loss_rate=loss_rate, loss_seed=loss_seed + 1,
        )

    def channel_from(self, node: str) -> SimplexChannel:
        """The outbound channel as seen from ``node``."""
        if node == self.a.node:
            return self.forward
        if node == self.b.node:
            return self.reverse
        raise KeyError(f"{node} is not an endpoint of {self}")

    def other_end(self, node: str) -> Interface:
        if node == self.a.node:
            return self.b
        if node == self.b.node:
            return self.a
        raise KeyError(f"{node} is not an endpoint of {self}")

    def endpoints(self) -> Tuple[Interface, Interface]:
        return self.a, self.b

    def __repr__(self) -> str:
        return f"<Link {self.a} <-> {self.b} {self.bandwidth_bps/1e6:g}Mbps>"
