"""Network topology: a graph of named nodes and weighted links.

The topology is the control plane's view of the network: node names,
adjacencies, link metrics and TE attributes (capacity, reservable
bandwidth).  Builders for the shapes used in tests and benchmarks are
provided, including :func:`paper_figure1`, the LER/LSR arrangement of
the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple


class TopologyError(Exception):
    """Structural topology errors (unknown nodes, duplicate links...)."""


@dataclass
class LinkAttributes:
    """Control-plane attributes of one (bidirectional) adjacency."""

    metric: float = 1.0
    bandwidth_bps: float = 100e6
    delay_s: float = 1e-3
    #: TE: bandwidth not yet reserved by LSPs (both directions tracked
    #: separately, keyed by the upstream node name).
    reservable_bps: Dict[str, float] = field(default_factory=dict)
    #: Administrative affinity bits for CSPF constraint matching.
    affinity: int = 0

    def reservable(self, from_node: str) -> float:
        return self.reservable_bps.get(from_node, self.bandwidth_bps)

    def reserve(self, from_node: str, bps: float) -> None:
        available = self.reservable(from_node)
        if bps > available + 1e-9:
            raise TopologyError(
                f"cannot reserve {bps} bps from {from_node}: only "
                f"{available} available"
            )
        self.reservable_bps[from_node] = available - bps

    def release(self, from_node: str, bps: float) -> None:
        available = self.reservable(from_node)
        self.reservable_bps[from_node] = min(
            self.bandwidth_bps, available + bps
        )


class Topology:
    """An undirected multigraph-free graph of nodes and links."""

    def __init__(self) -> None:
        self._nodes: Set[str] = set()
        self._links: Dict[Tuple[str, str], LinkAttributes] = {}

    # -- construction -------------------------------------------------------
    def add_node(self, name: str) -> None:
        if name in self._nodes:
            raise TopologyError(f"node {name!r} already exists")
        self._nodes.add(name)

    def add_link(
        self,
        a: str,
        b: str,
        metric: float = 1.0,
        bandwidth_bps: float = 100e6,
        delay_s: float = 1e-3,
        affinity: int = 0,
    ) -> LinkAttributes:
        if a not in self._nodes:
            raise TopologyError(f"unknown node {a!r}")
        if b not in self._nodes:
            raise TopologyError(f"unknown node {b!r}")
        if a == b:
            raise TopologyError(f"self-loop on {a!r}")
        key = self._key(a, b)
        if key in self._links:
            raise TopologyError(f"link {a!r}-{b!r} already exists")
        attrs = LinkAttributes(
            metric=metric,
            bandwidth_bps=bandwidth_bps,
            delay_s=delay_s,
            affinity=affinity,
        )
        self._links[key] = attrs
        return attrs

    def remove_link(self, a: str, b: str) -> None:
        key = self._key(a, b)
        if key not in self._links:
            raise TopologyError(f"no link {a!r}-{b!r}")
        del self._links[key]

    def restore_link(self, a: str, b: str, attrs: LinkAttributes) -> None:
        """Re-insert a previously removed adjacency with its saved
        attributes (TE reservations included) -- the heal half of a
        link-failure fault."""
        if a not in self._nodes:
            raise TopologyError(f"unknown node {a!r}")
        if b not in self._nodes:
            raise TopologyError(f"unknown node {b!r}")
        key = self._key(a, b)
        if key in self._links:
            raise TopologyError(f"link {a!r}-{b!r} already exists")
        self._links[key] = attrs

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    # -- queries --------------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    @property
    def links(self) -> List[Tuple[str, str]]:
        return sorted(self._links)

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def has_link(self, a: str, b: str) -> bool:
        return self._key(a, b) in self._links

    def link(self, a: str, b: str) -> LinkAttributes:
        try:
            return self._links[self._key(a, b)]
        except KeyError:
            raise TopologyError(f"no link {a!r}-{b!r}") from None

    def neighbors(self, node: str) -> List[str]:
        if node not in self._nodes:
            raise TopologyError(f"unknown node {node!r}")
        out = []
        for a, b in self._links:
            if a == node:
                out.append(b)
            elif b == node:
                out.append(a)
        return sorted(out)

    def degree(self, node: str) -> int:
        return len(self.neighbors(node))

    def edges_with_attrs(
        self,
    ) -> Iterator[Tuple[str, str, LinkAttributes]]:
        for (a, b), attrs in sorted(self._links.items()):
            yield a, b, attrs

    def __len__(self) -> int:
        return len(self._nodes)


# -- builders ---------------------------------------------------------------

def line(n: int, prefix: str = "n", **link_kwargs) -> Topology:
    """n nodes in a chain: n0 - n1 - ... - n(n-1)."""
    topo = Topology()
    for i in range(n):
        topo.add_node(f"{prefix}{i}")
    for i in range(n - 1):
        topo.add_link(f"{prefix}{i}", f"{prefix}{i+1}", **link_kwargs)
    return topo


def ring(n: int, prefix: str = "n", **link_kwargs) -> Topology:
    """n nodes in a cycle."""
    if n < 3:
        raise TopologyError("a ring needs at least 3 nodes")
    topo = line(n, prefix, **link_kwargs)
    topo.add_link(f"{prefix}{n-1}", f"{prefix}0", **link_kwargs)
    return topo


def full_mesh(n: int, prefix: str = "n", **link_kwargs) -> Topology:
    topo = Topology()
    for i in range(n):
        topo.add_node(f"{prefix}{i}")
    for i in range(n):
        for j in range(i + 1, n):
            topo.add_link(f"{prefix}{i}", f"{prefix}{j}", **link_kwargs)
    return topo


def paper_figure1(**link_kwargs) -> Topology:
    """The network of the paper's Figure 1.

    Two LERs bordering layer-2 networks, connected through a small core
    of LSRs: LER-A and LER-B at the edges, three LSRs forming the MPLS
    core with a redundant path, which is the minimum shape on which
    tunnels and alternate LSPs can both be demonstrated.
    """
    topo = Topology()
    for name in ("ler-a", "ler-b", "lsr-1", "lsr-2", "lsr-3"):
        topo.add_node(name)
    topo.add_link("ler-a", "lsr-1", **link_kwargs)
    topo.add_link("lsr-1", "lsr-2", **link_kwargs)
    topo.add_link("lsr-2", "ler-b", **link_kwargs)
    topo.add_link("lsr-1", "lsr-3", **link_kwargs)
    topo.add_link("lsr-3", "ler-b", **link_kwargs)
    return topo
