"""Flow aggregates: bulk traffic as (rate, count, bytes) summaries.

The scalar data plane materializes one Python object chain per packet
per hop -- three scheduler events per link, one engine decision per
node.  At the 100k-concurrent-flow scale ROADMAP targets, that is the
simulation's whole cost.  A :class:`FlowAggregate` represents a train
of ``count`` identical-shape packets of one flow as a single unit: one
*template* packet carries the wire shape (addresses, DSCP, TTL, label
stack as it evolves hop by hop) and the aggregate rides the event
fabric as one object -- one decision per node (via the per-node flow
cache), one transmission event per link.

Semantics, and their documented limits:

* packet ``i`` of the aggregate was created at
  ``template.created_at + i * interval`` (the CBR spacing); delivery
  latencies are derived analytically from the aggregate's arrival
  time, so latency statistics remain per-packet,
* metrics and flow accounting advance by exact packet/byte totals
  (``tests/net/test_aggregates.py`` cross-checks against scalar runs),
* the aggregate is the granularity of loss: a link-down flush, queue
  overflow or wire-loss draw takes the whole train (a burst is lost
  together), and per-packet telemetry *events* are not emitted for
  bulk packets -- packets that must be individually observable (span
  sampling) are materialized by the source instead and take the scalar
  path alongside the aggregate.

Aggregates only exist in batched mode
(:meth:`repro.net.network.MPLSNetwork.enable_batching`); the scalar
oracle never sees them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Optional, Union

from repro.net.events import EventScheduler
from repro.net.packet import IPv4Packet, MPLSPacket
from repro.net.traffic import DSCP_BE


@dataclass(frozen=True)
class FlowAggregate:
    """``count`` identical-shape packets of one flow, as one unit.

    ``template`` is the representative wire shape at the current hop:
    an :class:`IPv4Packet` at the edge, an :class:`MPLSPacket` once
    labelled.  Per-packet identity (uid, seq) is carried by the
    template only; bulk packets are never materialized.
    """

    template: Union[IPv4Packet, MPLSPacket]
    count: int
    #: creation spacing between consecutive packets (seconds)
    interval: float = 0.0

    #: class marker so the link layer can account without an import
    is_aggregate = True

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"aggregate count must be >= 0: {self.count}")
        if self.interval < 0:
            raise ValueError(f"negative aggregate interval {self.interval}")

    @property
    def inner(self) -> IPv4Packet:
        template = self.template
        return template.inner if isinstance(template, MPLSPacket) else template

    @property
    def flow_id(self) -> int:
        return self.inner.flow_id

    @property
    def first_created_at(self) -> float:
        return self.inner.created_at

    @property
    def length(self) -> int:
        """Total bytes across the whole train at the current shape."""
        return self.template.length * self.count

    def with_template(
        self, template: Union[IPv4Packet, MPLSPacket]
    ) -> "FlowAggregate":
        return replace(self, template=template)

    def created_times(self) -> Iterator[float]:
        base = self.first_created_at
        for i in range(self.count):
            yield base + i * self.interval


@dataclass(frozen=True)
class AggregateDelivery:
    """A whole aggregate that reached its attached host."""

    time: float
    node: str
    flow_id: int
    count: int
    bytes: int
    first_created_at: float
    interval: float

    def latencies(self) -> List[float]:
        """Analytic per-packet latencies: every packet of the train
        arrives with the aggregate, packet ``i`` was created
        ``i * interval`` after the first."""
        return [
            self.time - (self.first_created_at + i * self.interval)
            for i in range(self.count)
        ]


class AggregateCBRSource:
    """A CBR flow emitted as aggregates, with sampled materialization.

    Emits one :class:`FlowAggregate` of up to ``batch`` packets per
    batch window instead of ``batch`` individual packets.  When
    ``sample_every`` is set, every ``sample_every``-th packet of the
    flow is materialized as a real :class:`IPv4Packet` and injected at
    its exact creation time through ``sample_sink`` (default: the same
    sink), so span tracing and per-packet telemetry observe it on the
    scalar path; the aggregate's count excludes materialized packets,
    keeping packet/byte totals exact.

    Mirrors :class:`repro.net.traffic.CBRSource`: same flow-id
    allocation, same ``(packet_size + 20) * 8 / rate_bps`` spacing,
    same ``sent`` / ``sent_bytes`` accounting (both bulk and sampled
    packets count).
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        sink: Callable[[FlowAggregate], None],
        src: str,
        dst: str,
        rate_bps: float = 1e6,
        packet_size: int = 500,
        batch: int = 100,
        dscp: int = DSCP_BE,
        start: float = 0.0,
        stop: Optional[float] = None,
        ttl: int = 64,
        sample_every: Optional[int] = None,
        sample_sink: Optional[Callable[[IPv4Packet], None]] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if sample_every is not None and sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every}")
        from repro.net.addressing import IPv4Address
        from repro.net.traffic import _flow_counter

        self.scheduler = scheduler
        self.sink = sink
        self.src = IPv4Address(src)
        self.dst = IPv4Address(dst)
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.batch = batch
        self.dscp = dscp
        self.ttl = ttl
        self.start = start
        self.stop = stop
        self.interval = (packet_size + 20) * 8 / rate_bps
        self.sample_every = sample_every
        self.sample_sink = sample_sink
        self.flow_id = next(_flow_counter)
        self.sent = 0
        self.sent_bytes = 0
        self.sampled = 0
        self._running = False

    def begin(self) -> None:
        if self._running:
            raise RuntimeError("source already started")
        self._running = True
        self.scheduler.at(self.start, self._emit)

    def _make_packet(self, seq: int, created_at: float) -> IPv4Packet:
        return IPv4Packet(
            src=self.src,
            dst=self.dst,
            ttl=self.ttl,
            dscp=self.dscp,
            payload=bytes(self.packet_size),
            flow_id=self.flow_id,
            seq=seq,
            created_at=created_at,
        )

    def _emit(self) -> None:
        now = self.scheduler.now
        if self.stop is not None and now >= self.stop:
            self._running = False
            return
        n = self.batch
        if self.stop is not None:
            # don't emit packets whose creation time falls at/past stop
            # (the scalar CBR source stops strictly before it)
            room = math.ceil((self.stop - now) / self.interval)
            n = min(n, max(1, room))
        bulk = n
        if self.sample_every is not None:
            # materialize every sample_every-th packet of the flow (by
            # absolute sequence number) at its exact creation time
            sample_sink = (
                self.sample_sink if self.sample_sink is not None else self.sink
            )
            for i in range(n):
                seq = self.sent + i
                if seq % self.sample_every == 0:
                    packet = self._make_packet(seq, now + i * self.interval)
                    self.scheduler.at(
                        packet.created_at, lambda p=packet: sample_sink(p)
                    )
                    self.sampled += 1
                    bulk -= 1
        template = self._make_packet(self.sent, now)
        self.sent += n
        self.sent_bytes += n * template.length
        if bulk > 0:
            self.sink(
                FlowAggregate(
                    template=template, count=bulk, interval=self.interval
                )
            )
        self.scheduler.after(n * self.interval, self._emit)
