"""Packets: IPv4 datagrams and MPLS-labelled packets.

The simulator moves two packet shapes around:

* :class:`IPv4Packet` -- the layer-3 payload the layer-2 networks
  generate and receive (paper Figure 2: "LAYER 2 NETWORK (generates L2
  packet)").  Only the fields the MPLS data plane consults are modelled
  (addresses, TTL, DSCP, protocol, length, payload); everything is
  still serializable so the framing codecs have real bytes to carry.
* :class:`MPLSPacket` -- an IPv4 packet with a label stack attached,
  the unit the LSRs switch (paper Figure 4).

Both are immutable value objects; data-plane transformations produce
new packets, which keeps multi-node simulations free of aliasing bugs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.net.addressing import IPv4Address

if TYPE_CHECKING:  # deferred to break the net <-> mpls import cycle
    from repro.mpls.stack import LabelStack

_packet_ids = itertools.count(1)


@dataclass(frozen=True)
class IPv4Packet:
    """A simplified IPv4 datagram.

    ``packet_id`` is the arbitrary per-packet identifier the paper's
    architecture feeds into the information base at level 1; for IP
    packets the paper uses the destination address, which is what
    :meth:`identifier` returns.
    """

    src: IPv4Address
    dst: IPv4Address
    ttl: int = 64
    dscp: int = 0
    protocol: int = 17  # UDP by default; the sources mostly model UDP flows
    payload: bytes = b""
    flow_id: int = 0
    seq: int = 0
    created_at: float = 0.0
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        object.__setattr__(self, "src", IPv4Address(self.src))
        object.__setattr__(self, "dst", IPv4Address(self.dst))
        if not 0 <= self.ttl <= 255:
            raise ValueError(f"IPv4 TTL {self.ttl} out of range")
        if not 0 <= self.dscp <= 63:
            raise ValueError(f"DSCP {self.dscp} out of range")

    @property
    def length(self) -> int:
        """Total datagram length: 20-byte header + payload."""
        return 20 + len(self.payload)

    def identifier(self) -> int:
        """The 32-bit packet identifier used at information-base level 1
        (the destination address, per the paper)."""
        return self.dst.value

    def decremented(self) -> "IPv4Packet":
        if self.ttl == 0:
            raise ValueError("cannot decrement a zero IPv4 TTL")
        return replace(self, ttl=self.ttl - 1)

    def with_ttl(self, ttl: int) -> "IPv4Packet":
        """A copy with the TTL rewritten (identity -- uid, flow, seq --
        preserved; used when the MPLS TTL is copied back at an egress)."""
        return replace(self, ttl=ttl)

    def serialize(self) -> bytes:
        """A compact but faithful-enough header encoding + payload.

        Version/IHL and checksum are synthesized; the fields the data
        plane reads round-trip exactly.
        """
        header = bytearray(20)
        header[0] = 0x45  # version 4, IHL 5
        header[1] = self.dscp << 2
        total = self.length
        header[2:4] = total.to_bytes(2, "big")
        header[4:6] = (self.uid & 0xFFFF).to_bytes(2, "big")
        header[8] = self.ttl
        header[9] = self.protocol
        header[12:16] = self.src.to_bytes()
        header[16:20] = self.dst.to_bytes()
        return bytes(header) + self.payload

    @classmethod
    def deserialize(cls, data: bytes) -> "IPv4Packet":
        if len(data) < 20:
            raise ValueError("IPv4 packet shorter than a header")
        if data[0] >> 4 != 4:
            raise ValueError("not an IPv4 packet")
        total = int.from_bytes(data[2:4], "big")
        if total > len(data):
            raise ValueError("truncated IPv4 packet")
        return cls(
            src=IPv4Address.from_bytes(data[12:16]),
            dst=IPv4Address.from_bytes(data[16:20]),
            ttl=data[8],
            dscp=data[1] >> 2,
            protocol=data[9],
            payload=data[20:total],
        )


@dataclass(frozen=True)
class MPLSPacket:
    """An IPv4 packet carrying an MPLS label stack."""

    stack: LabelStack
    inner: IPv4Packet

    @property
    def length(self) -> int:
        return 4 * self.stack.depth + self.inner.length

    def with_stack(self, stack: LabelStack) -> "MPLSPacket":
        return MPLSPacket(stack, self.inner)

    def serialize(self) -> bytes:
        return self.stack.encode_bytes() + self.inner.serialize()

    @classmethod
    def deserialize(cls, data: bytes) -> "MPLSPacket":
        from repro.mpls.stack import LabelStack

        stack_len = LabelStack.wire_length(data)
        stack = LabelStack.decode_bytes(data[:stack_len])
        inner = IPv4Packet.deserialize(data[stack_len:])
        return cls(stack, inner)

    def __repr__(self) -> str:
        return f"<MPLSPacket {self.stack!r} {self.inner.src}->{self.inner.dst}>"
