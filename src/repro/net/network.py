"""MPLSNetwork: the running network of Figure 1.

Combines a :class:`~repro.net.topology.Topology`, per-node
:class:`~repro.mpls.router.LSRNode` data planes, event-scheduled
:class:`~repro.net.link.Link` channels, and host attachment points at
the edge LERs into one simulated MPLS domain:

* packets injected at a node traverse the data plane hop by hop with
  real transmission/propagation/queueing delays,
* per-link queues are pluggable (drop-tail baseline, or the QoS
  schedulers of :mod:`repro.qos.scheduler`),
* delivered packets are recorded with end-to-end latency; drops are
  recorded with their reason,
* the control plane (:mod:`repro.control`) programs the very same
  node tables the data plane consults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.mpls.forwarding import Action
from repro.mpls.label import IMPLICIT_NULL, LabelOp
from repro.mpls.router import LSRNode, RouterRole, packet_ttl, stack_labels
from repro.net.addressing import IPv4Prefix
from repro.net.events import EventScheduler
from repro.net.link import DropTailQueue, Interface, Link
from repro.net.packet import IPv4Packet, MPLSPacket

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids an import cycle
    from repro.mpls.fec import FEC
from repro.net.topology import Topology
from repro.obs.events import PacketDelivered, PacketDropped
from repro.obs.telemetry import get_telemetry
from repro.qos.classifier import cos_of_packet


@dataclass
class Delivery:
    """One packet that reached its attached host."""

    time: float
    node: str
    packet: IPv4Packet

    @property
    def latency(self) -> float:
        return self.time - self.packet.created_at


@dataclass
class Drop:
    """Packets lost in the domain at one point in time.

    Scalar processing always records ``count == 1``; a dropped flow
    aggregate records its whole train as one entry.
    """

    time: float
    node: str
    reason: str
    count: int = 1


class MPLSNetwork:
    """A simulated MPLS domain.

    Parameters
    ----------
    topology:
        Node/link graph; link attributes set bandwidth and delay.
    roles:
        node name -> :class:`RouterRole`.  Nodes absent from the
        mapping default to core LSRs.
    queue_factory:
        Produces the output queue for each link direction; swap in a
        QoS scheduler factory to enable CoS-aware queueing.
    node_factory:
        Produces each node from (name, role); defaults to the software
        :class:`LSRNode`.  Pass
        :class:`~repro.core.hwnode.HardwareLSRNode` to run the data
        plane on the paper's hardware model with cycle accounting.
    """

    def __init__(
        self,
        topology: Topology,
        roles: Optional[Dict[str, RouterRole]] = None,
        scheduler: Optional[EventScheduler] = None,
        queue_factory: Callable[[], Any] = DropTailQueue,
        node_factory: Callable[[str, RouterRole], LSRNode] = LSRNode,
    ) -> None:
        self.topology = topology
        self.scheduler = scheduler if scheduler is not None else EventScheduler()
        # telemetry events carry simulation time: point the default
        # event log's clock at this network's scheduler (the latest
        # constructed network wins, which matches one-network-per-run
        # usage in the tests, benchmarks and CLI)
        get_telemetry().events.clock = lambda: self.scheduler.now
        roles = roles or {}
        self.nodes: Dict[str, LSRNode] = {}
        for name in topology.nodes:
            role = roles.get(name, RouterRole.LSR)
            self.nodes[name] = node_factory(name, role)
        self.links: Dict[Tuple[str, str], Link] = {}
        self._link_of: Dict[Tuple[str, str], Link] = {}
        for a, b, attrs in topology.edges_with_attrs():
            if_a = f"to-{b}"
            if_b = f"to-{a}"
            self.nodes[a].add_interface(if_a)
            self.nodes[b].add_interface(if_b)
            self.nodes[a].neighbor_interfaces[b] = if_a
            self.nodes[b].neighbor_interfaces[a] = if_b
            link = Link(
                self.scheduler,
                Interface(a, if_a),
                Interface(b, if_b),
                bandwidth_bps=attrs.bandwidth_bps,
                delay_s=attrs.delay_s,
                queue_factory=queue_factory,
            )
            link.forward.on_deliver = self._on_arrival
            link.reverse.on_deliver = self._on_arrival
            key = (a, b) if a <= b else (b, a)
            self.links[key] = link
            self._link_of[(a, b)] = link
            self._link_of[(b, a)] = link
        #: LER name -> list of (prefix, sink) host attachments
        self._hosts: Dict[str, List[Tuple[IPv4Prefix, Optional[Callable]]]] = {}
        self.deliveries: List[Delivery] = []
        self.drops: List[Drop] = []
        #: failed link key -> (link, saved control-plane attributes)
        self._failed_links: Dict[Tuple[str, str], Tuple[Link, Any]] = {}
        #: crashed nodes (packets at them are dropped; their links are
        #: down) and the links each crash took out
        self._down_nodes: Dict[str, List[Tuple[str, str]]] = {}
        #: optional ingress admission hook (overload load shedding):
        #: called with (node, packet) for unlabelled packets before
        #: lookup; returning True drops the packet as shed
        self.ingress_guard: Optional[
            Callable[[str, IPv4Packet], bool]
        ] = None
        #: batched fast-path mode (see :meth:`enable_batching`)
        self.batching = False
        #: delivered flow aggregates (batched mode only); scalar
        #: deliveries stay in :attr:`deliveries`
        self.aggregate_deliveries: List[Any] = []
        #: the run's :class:`repro.security.SecurityMonitor` (attached
        #: by its ``arm()``); with one attached, TTL-expiry discards
        #: punt exception load to it and :meth:`inject_external` feeds
        #: the edge trust-boundary guard
        self.security_monitor: Optional[Any] = None

    # -- batched fast path ---------------------------------------------------
    def enable_batching(self, enabled: bool = True) -> None:
        """Switch the data plane between the scalar per-packet path
        (the differential oracle) and the batched fast path: per-node
        flow caches plus flow-aggregate processing.

        Per-packet traffic behaves identically in both modes -- same
        decisions, same telemetry, same reports -- which
        ``tests/integration/test_batching_equivalence.py`` asserts
        byte-for-byte; see ``docs/batching.md`` for the contract.
        """
        self.batching = enabled
        for node in self.nodes.values():
            if enabled:
                node.enable_batching()
            else:
                node.disable_batching()

    # -- wiring ----------------------------------------------------------
    def node(self, name: str) -> LSRNode:
        return self.nodes[name]

    def link(self, a: str, b: str) -> Link:
        try:
            return self._link_of[(a, b)]
        except KeyError:
            raise KeyError(f"no link {a!r}-{b!r}") from None

    def attach_host(
        self,
        ler: str,
        prefix: Union[str, IPv4Prefix],
        sink: Optional[Callable[[IPv4Packet], None]] = None,
    ) -> None:
        """Declare that hosts in ``prefix`` hang off ``ler``.

        Packets the LER forwards as plain IP to a matching destination
        count as delivered (and are passed to ``sink`` if given).
        """
        node = self.nodes[ler]
        if not node.is_edge:
            raise ValueError(f"{ler} is a core LSR; hosts attach to LERs")
        self._hosts.setdefault(ler, []).append(
            (prefix if isinstance(prefix, IPv4Prefix) else IPv4Prefix(prefix), sink)
        )

    # -- data plane ---------------------------------------------------------
    def inject(self, node: str, packet: Union[IPv4Packet, MPLSPacket]) -> None:
        """Hand a packet to a node's data plane at the current time."""
        if node not in self.nodes:
            raise KeyError(f"unknown node {node!r}")
        self.scheduler.after(0.0, lambda: self._process(node, packet))

    def source_sink(self, ler: str) -> Callable[[IPv4Packet], None]:
        """A sink for traffic generators feeding ``ler``."""
        return lambda packet: self._process(ler, packet)

    def inject_external(
        self, node: str, packet: Union[IPv4Packet, MPLSPacket]
    ) -> None:
        """Hand a packet to a node from *outside* the MPLS domain.

        Unlike :meth:`inject` (trusted, intra-domain), this is the
        trust boundary of RFC 4364: an edge node with an armed
        ``external_guard`` rejects labelled packets arriving here,
        because nothing outside the domain legitimately originates
        label stacks.  The fault injector uses this entry point for
        spoofed-label and low-TTL attack traffic.
        """
        if node not in self.nodes:
            raise KeyError(f"unknown node {node!r}")
        self.scheduler.after(
            0.0, lambda: self._process_external(node, packet)
        )

    def _process_external(
        self, node_name: str, packet: Union[IPv4Packet, MPLSPacket]
    ) -> None:
        if node_name in self._down_nodes:
            self._record_drop(
                self.scheduler.now,
                node_name,
                f"{node_name}: node down",
                packet,
            )
            return
        decision = self.nodes[node_name].receive_external(packet)
        if decision is not None:
            # guard rejection: counted by the node like any discard
            self.drops.append(
                Drop(
                    self.scheduler.now,
                    node_name,
                    decision.reason or "unspecified",
                )
            )
            return
        if self.security_monitor is not None and isinstance(
            packet, MPLSPacket
        ):
            # a forged labelled packet entered the domain unchallenged
            self.security_monitor.note_spoof_accepted(packet.inner.flow_id)
        self._process(node_name, packet)

    def inject_aggregate(self, node: str, aggregate: Any) -> None:
        """Hand a flow aggregate to a node's data plane (batched mode)."""
        if node not in self.nodes:
            raise KeyError(f"unknown node {node!r}")
        if not self.batching:
            raise RuntimeError(
                "aggregates need batching: call enable_batching() first"
            )
        self.scheduler.after(
            0.0, lambda: self._process_aggregate(node, aggregate)
        )

    def aggregate_sink(self, ler: str) -> Callable[[Any], None]:
        """A sink for aggregate traffic generators feeding ``ler``."""
        return lambda aggregate: self._process_aggregate(ler, aggregate)

    def _on_arrival(self, iface: Interface, packet: Any) -> None:
        if getattr(packet, "is_aggregate", False):
            self._process_aggregate(iface.node, packet)
        else:
            self._process(iface.node, packet)

    def _process(
        self, node_name: str, packet: Union[IPv4Packet, MPLSPacket]
    ) -> None:
        if node_name in self._down_nodes:
            self._record_drop(
                self.scheduler.now,
                node_name,
                f"{node_name}: node down",
                packet,
            )
            return
        node = self.nodes[node_name]
        # An unlabelled packet for a locally attached prefix is handed
        # straight to the layer-2 side -- the egress-LER case when
        # penultimate-hop popping already removed the label upstream.
        if isinstance(packet, IPv4Packet) and self._is_attached(
            node_name, packet
        ):
            self._deliver(node_name, packet)
            return
        if (
            self.ingress_guard is not None
            and isinstance(packet, IPv4Packet)
            and self.ingress_guard(node_name, packet)
        ):
            self._record_drop(
                self.scheduler.now,
                node_name,
                f"{node_name}: overload shed",
                packet,
            )
            return
        decision = node.receive(packet)
        # "Pop and continue": a pop whose NHLFE names no next hop (a
        # tunnel tail) exposes the inner label, which must be looked up
        # again at this same node.  The bound is the max stack depth.
        relookups = 0
        while (
            decision.action is Action.FORWARD_MPLS
            and decision.next_hop is None
            and isinstance(decision.packet, MPLSPacket)
            and relookups < 4
        ):
            decision = node.receive(decision.packet)
            relookups += 1
        now = self.scheduler.now
        if decision.action is Action.DISCARD:
            # the node's own telemetry already counted this discard
            self.drops.append(
                Drop(now, node_name, decision.reason or "unspecified")
            )
            if self.security_monitor is not None and "TTL expired" in (
                decision.reason or ""
            ):
                # an expired TTL punts ICMP-style exception work to
                # the control plane; the monitor rate-limits it
                self.security_monitor.ttl_exception(node_name, 1)
            return
        if decision.action is Action.DELIVER_LOCAL:
            return
        out = decision.packet
        if decision.action is Action.FORWARD_IP:
            inner = out  # an IPv4Packet
            if decision.next_hop is None or self._is_attached(
                node_name, inner
            ):
                self._deliver(node_name, inner)
                return
        if decision.next_hop is None:
            self._record_drop(
                now, node_name, f"{node_name}: no next hop resolved", out
            )
            return
        link = self._link_of.get((node_name, decision.next_hop))
        if link is None:
            self._record_drop(
                now,
                node_name,
                f"{node_name}: no link towards {decision.next_hop}",
                out,
            )
            return
        channel = link.channel_from(node_name)
        accepted = channel.send(out, out.length, cos=cos_of_packet(out))
        if not accepted:
            self._record_drop(
                now,
                node_name,
                f"{node_name}: queue overflow towards {decision.next_hop}",
                out,
            )

    def _process_aggregate(self, node_name: str, aggregate: Any) -> None:
        """The aggregate counterpart of :meth:`_process`: one decision
        per hop applied to the whole train.  An empty aggregate is a
        no-op (no events, no accounting)."""
        if aggregate.count <= 0:
            return
        now = self.scheduler.now
        if node_name in self._down_nodes:
            self._record_drop(
                now,
                node_name,
                f"{node_name}: node down",
                aggregate.template,
                count=aggregate.count,
            )
            return
        node = self.nodes[node_name]
        template = aggregate.template
        if isinstance(template, IPv4Packet) and self._is_attached(
            node_name, template
        ):
            self._deliver_aggregate(node_name, aggregate)
            return
        if (
            self.ingress_guard is not None
            and isinstance(template, IPv4Packet)
            and self.ingress_guard(node_name, template)
        ):
            self._record_drop(
                now,
                node_name,
                f"{node_name}: overload shed",
                template,
                count=aggregate.count,
            )
            return
        decision = node.receive_aggregate(aggregate)
        relookups = 0
        while (
            decision.action is Action.FORWARD_MPLS
            and decision.next_hop is None
            and isinstance(decision.packet, MPLSPacket)
            and relookups < 4
        ):
            aggregate = aggregate.with_template(decision.packet)
            decision = node.receive_aggregate(aggregate)
            relookups += 1
        now = self.scheduler.now
        if decision.action is Action.DISCARD:
            self.drops.append(
                Drop(
                    now,
                    node_name,
                    decision.reason or "unspecified",
                    count=aggregate.count,
                )
            )
            if self.security_monitor is not None and "TTL expired" in (
                decision.reason or ""
            ):
                # count-aware: the whole train punts exception load
                self.security_monitor.ttl_exception(
                    node_name, aggregate.count
                )
            return
        if decision.action is Action.DELIVER_LOCAL:
            return
        out = decision.packet
        aggregate = aggregate.with_template(out)
        if decision.action is Action.FORWARD_IP:
            if decision.next_hop is None or self._is_attached(
                node_name, out
            ):
                self._deliver_aggregate(node_name, aggregate)
                return
        if decision.next_hop is None:
            self._record_drop(
                now,
                node_name,
                f"{node_name}: no next hop resolved",
                out,
                count=aggregate.count,
            )
            return
        link = self._link_of.get((node_name, decision.next_hop))
        if link is None:
            self._record_drop(
                now,
                node_name,
                f"{node_name}: no link towards {decision.next_hop}",
                out,
                count=aggregate.count,
            )
            return
        channel = link.channel_from(node_name)
        accepted = channel.send(
            aggregate, aggregate.length, cos=cos_of_packet(out)
        )
        if not accepted:
            self._record_drop(
                now,
                node_name,
                f"{node_name}: queue overflow towards {decision.next_hop}",
                out,
                count=aggregate.count,
            )

    def _record_drop(
        self,
        now: float,
        node_name: str,
        reason: str,
        packet: Optional[Union[IPv4Packet, MPLSPacket]] = None,
        count: int = 1,
    ) -> None:
        self.drops.append(Drop(now, node_name, reason, count=count))
        tel = get_telemetry()
        if tel.enabled:
            tel.drops.labels(
                node_name, reason.split(":")[-1].strip()
            ).inc(count)
            if packet is not None:
                inner = (
                    packet.inner
                    if isinstance(packet, MPLSPacket)
                    else packet
                )
                tel.events.emit(
                    PacketDropped(
                        node=node_name,
                        uid=inner.uid,
                        flow_id=inner.flow_id,
                        reason=reason,
                        labels_in=stack_labels(packet),
                        ttl_in=packet_ttl(packet),
                    )
                )

    def _is_attached(self, node_name: str, packet: IPv4Packet) -> bool:
        return any(
            prefix.contains(packet.dst)
            for prefix, _ in self._hosts.get(node_name, [])
        )

    def _deliver(self, node_name: str, packet: IPv4Packet) -> None:
        delivery = Delivery(self.scheduler.now, node_name, packet)
        self.deliveries.append(delivery)
        tel = get_telemetry()
        if tel.enabled:
            tel.packets.labels(node_name, "delivered").inc()
            tel.delivery_latency.labels(node_name).observe(delivery.latency)
            # demand accounting (ingress->egress matrix cell) rides the
            # same guard; one None test when no accountant is attached
            if tel.flows is not None:
                tel.flows.record_delivery(
                    node_name, packet.flow_id, packet.length
                )
            tel.events.emit(
                PacketDelivered(
                    node=node_name,
                    uid=packet.uid,
                    flow_id=packet.flow_id,
                    latency=delivery.latency,
                )
            )
        for prefix, sink in self._hosts.get(node_name, []):
            if sink is not None and prefix.contains(packet.dst):
                sink(packet)

    def _deliver_aggregate(self, node_name: str, aggregate: Any) -> None:
        """Record a whole aggregate as delivered: exact packet/byte
        totals, analytic per-packet latencies (see
        :class:`~repro.net.aggregate.AggregateDelivery`).  Host sinks
        receive the aggregate's template only when they opted in via
        an ``is_aggregate``-aware callable; per-packet sinks are not
        called for bulk packets."""
        from repro.net.aggregate import AggregateDelivery

        inner = aggregate.inner
        delivery = AggregateDelivery(
            time=self.scheduler.now,
            node=node_name,
            flow_id=inner.flow_id,
            count=aggregate.count,
            bytes=aggregate.length,
            first_created_at=aggregate.first_created_at,
            interval=aggregate.interval,
        )
        self.aggregate_deliveries.append(delivery)
        tel = get_telemetry()
        if tel.enabled:
            tel.packets.labels(node_name, "delivered").inc(aggregate.count)
            hist = tel.delivery_latency.labels(node_name)
            for latency in delivery.latencies():
                hist.observe(latency)
            if tel.flows is not None:
                tel.flows.record_delivery_bulk(
                    node_name,
                    inner.flow_id,
                    aggregate.count,
                    aggregate.length,
                )

    # -- failure injection ---------------------------------------------------
    def fail_link(self, a: str, b: str) -> None:
        """Take a link out of service.

        The adjacency disappears from both the data plane (subsequent
        sends towards the dead neighbour are dropped with a "no link"
        reason; packets already queued or in flight on the link are
        lost) and the control-plane topology, so SPF/CSPF
        reconvergence sees the failure.  The link itself is retained so
        :meth:`restore_link` can bring it back.
        """
        link = self.link(a, b)
        self._link_of.pop((a, b))
        self._link_of.pop((b, a))
        key = (a, b) if a <= b else (b, a)
        self.links.pop(key)
        link.fail()
        attrs = None
        if self.topology.has_link(a, b):
            attrs = self.topology.link(a, b)
            self.topology.remove_link(a, b)
        self._failed_links[key] = (link, attrs)

    def restore_link(self, a: str, b: str) -> Link:
        """Bring a previously failed link back into service, restoring
        its control-plane attributes (the heal half of a link fault)."""
        key = (a, b) if a <= b else (b, a)
        try:
            link, attrs = self._failed_links.pop(key)
        except KeyError:
            raise KeyError(f"link {a!r}-{b!r} is not failed") from None
        link.heal()
        self.links[key] = link
        self._link_of[(a, b)] = link
        self._link_of[(b, a)] = link
        if attrs is not None and not self.topology.has_link(a, b):
            self.topology.restore_link(a, b, attrs)
        return link

    def link_is_up(self, a: str, b: str) -> bool:
        """True when the adjacency exists and neither endpoint crashed."""
        return (
            (a, b) in self._link_of
            and a not in self._down_nodes
            and b not in self._down_nodes
        )

    def fail_node(self, name: str) -> None:
        """Crash a node: all its links go down and packets handed to it
        are dropped until :meth:`restore_node`."""
        if name not in self.nodes:
            raise KeyError(f"unknown node {name!r}")
        if name in self._down_nodes:
            return
        node = self.nodes[name]
        # a crash mid-transaction kills the staging bank with the
        # software; roll back so the cold-restart clear() hits the
        # active bank, not a dangling shadow copy
        if node.ilm.in_transaction:
            node.ilm.rollback()
        if node.ftn.in_transaction:
            node.ftn.rollback()
        incident = [
            (a, b) for (a, b) in list(self.links) if name in (a, b)
        ]
        for a, b in incident:
            self.fail_link(a, b)
        self._down_nodes[name] = incident

    def restore_node(self, name: str) -> List[Tuple[str, str]]:
        """Restart a crashed node; returns the links actually restored.

        The restart is cold: the node's ILM/FTN tables are cleared
        (forwarding state does not survive a crash) and must be
        re-programmed by the control plane.  A link shared with another
        still-crashed node stays down; it is handed over to that node's
        incident list so the *last* restart brings it back (and it is
        absent from the returned list).  Warm control-plane-only
        restarts never pass through here -- see
        :meth:`repro.control.ldp.LDPProcess.begin_graceful_restart`.
        """
        try:
            incident = self._down_nodes.pop(name)
        except KeyError:
            raise KeyError(f"node {name!r} is not down") from None
        node = self.nodes[name]
        node.ilm.clear()
        node.ftn.clear()
        restored: List[Tuple[str, str]] = []
        for a, b in incident:
            # a link shared with another crashed node stays down: hand
            # it to the survivor so its restart restores the link
            other = b if a == name else a
            if other in self._down_nodes:
                self._down_nodes[other].append((a, b))
            else:
                self.restore_link(a, b)
                restored.append((a, b))
        return restored

    # -- running ---------------------------------------------------------
    def run(self, until: Optional[float] = None) -> int:
        return self.scheduler.run(until=until)

    # -- statistics ---------------------------------------------------------
    def latencies(self, flow_id: Optional[int] = None) -> List[float]:
        values = [
            d.latency
            for d in self.deliveries
            if flow_id is None or d.packet.flow_id == flow_id
        ]
        for aggregate in self.aggregate_deliveries:
            if flow_id is None or aggregate.flow_id == flow_id:
                values.extend(aggregate.latencies())
        return values

    def delivered_count(self, flow_id: Optional[int] = None) -> int:
        if flow_id is None:
            scalar = len(self.deliveries)
        else:
            scalar = sum(
                1 for d in self.deliveries if d.packet.flow_id == flow_id
            )
        return scalar + sum(
            a.count
            for a in self.aggregate_deliveries
            if flow_id is None or a.flow_id == flow_id
        )

    def drop_count(self) -> int:
        return sum(d.count for d in self.drops)

    # -- control-plane reachability ------------------------------------------
    def fec_trace(self, ingress: str, fec: FEC) -> Optional[List[str]]:
        """Walk the active forwarding tables for ``fec`` from ``ingress``.

        A pure control-plane traversal of the same ILM/FTN state the
        data plane reads: follow the ingress FTN entry hop by hop
        (PUSH/SWAP/POP/NOOP over up links and live nodes) until the
        packet would be delivered at a LER attached to the FEC's
        destination.  Returns the node path, or ``None`` when a packet
        classified into ``fec`` would blackhole: no FTN entry, a dead
        link or node on the way, a broken label chain, or a label loop.
        The PCE controller uses this to account blackholed FECs without
        injecting probe traffic.
        """
        if ingress not in self.nodes or ingress in self._down_nodes:
            return None
        entry = None
        for candidate, nhlfe in self.nodes[ingress].ftn:
            if candidate == fec:
                entry = nhlfe
                break
        if entry is None or entry.next_hop is None:
            return None
        path = [ingress]
        current = ingress
        label = entry.out_label if entry.op is LabelOp.PUSH else None
        next_hop = entry.next_hop
        # bound generous enough for any simple path plus PHP hops; a
        # walk that exceeds it can only be a label loop
        for _ in range(4 * len(self.nodes)):
            if next_hop is None or not self.link_is_up(current, next_hop):
                return None
            current = next_hop
            path.append(current)
            if current in self._down_nodes:
                return None
            if label is None or label == IMPLICIT_NULL:
                # the packet arrives unlabelled (NOOP towards a PHP
                # egress, or popped upstream): deliverable only at a
                # LER attached to the FEC's destination
                return path if self._fec_attached(current, fec) else None
            nhlfe = self.nodes[current].ilm.get(label)
            if nhlfe is None:
                return None
            if nhlfe.op is LabelOp.POP:
                if nhlfe.next_hop is None:
                    return (
                        path if self._fec_attached(current, fec) else None
                    )
                label, next_hop = None, nhlfe.next_hop
            elif nhlfe.op is LabelOp.SWAP:
                label, next_hop = nhlfe.out_label, nhlfe.next_hop
            else:
                return None
        return None  # label loop

    def _fec_attached(self, node: str, fec: FEC) -> bool:
        """Does ``node`` terminate ``fec``'s destination (host attach)?"""
        prefix = getattr(fec, "prefix", None)
        host = getattr(fec, "host", None)
        for attached, _sink in self._hosts.get(node, []):
            if prefix is not None and attached == prefix:
                return True
            if host is not None and attached.contains(host):
                return True
        return False
